//! Session-first client API: one driver surface over both runtimes.
//!
//! Zeus's pitch (§7 of the paper) is that transactions run as *local* code —
//! so the client surface must not throttle that locality behind one blocking
//! round trip per transaction. This module defines the surface every
//! consumer (benches, examples, chaos, integration tests) is written
//! against, exactly once:
//!
//! * [`ClusterDriver`] — a running cluster, simulated
//!   ([`crate::SimCluster`]) or threaded ([`crate::ThreadedCluster`]):
//!   object loading, per-node sessions, stats, and the link-fault hooks the
//!   fault scenarios need.
//! * [`Session`] — a client's connection to one node: typed
//!   [`write_txn`](Session::write_txn)/[`read_txn`](Session::read_txn)
//!   closures generic over a [`TxPayload`] result, explicit ownership
//!   migration via [`acquire`](Session::acquire), and *pipelined*
//!   non-blocking submission ([`submit_write`](Session::submit_write) →
//!   [`TxTicket`]) so a single client keeps N transactions in flight.
//! * [`RetryPolicy`] — how transient aborts are retried (budget, back-off,
//!   and the [`TxError::is_retryable`] classification), an explicit
//!   object instead of retry loops baked into the runtimes.
//!
//! # Writing and reading through a session
//!
//! ```
//! use zeus_core::{ClusterDriver, NodeId, ObjectId, Session, SimCluster, ZeusConfig};
//!
//! let cluster = SimCluster::new(ZeusConfig::with_nodes(3));
//! let account = ObjectId(1);
//! cluster.create_object(account, 100u64.to_le_bytes().to_vec(), NodeId(0));
//!
//! // Transactions are typed: the closure's Ok value is returned directly.
//! let session = cluster.handle(NodeId(0));
//! let balance: u64 = session
//!     .write_txn(move |tx| {
//!         let mut balance = u64::from_le_bytes(tx.read(account)?.as_ref().try_into().unwrap());
//!         balance -= 30;
//!         tx.write(account, balance.to_le_bytes().to_vec())?;
//!         Ok(balance)
//!     })
//!     .unwrap();
//! assert_eq!(balance, 70);
//!
//! // Read-only transactions run locally on any replica, zero messages.
//! cluster.quiesce();
//! let read = cluster.handle(NodeId(1));
//! let seen: u64 = read
//!     .read_txn(move |tx| {
//!         Ok(u64::from_le_bytes(tx.read(account)?.as_ref().try_into().unwrap()))
//!     })
//!     .unwrap();
//! assert_eq!(seen, 70);
//! ```
//!
//! # Pipelined submission
//!
//! ```
//! use zeus_core::{ClusterDriver, NodeId, ObjectId, Session, ThreadedCluster, ZeusConfig};
//!
//! let cluster = ThreadedCluster::start(ZeusConfig::with_nodes(3));
//! for i in 0..8u64 {
//!     cluster.create_object(ObjectId(i), vec![0u8], NodeId(0));
//! }
//! let session = cluster.handle(NodeId(0));
//! // Keep 8 transactions in flight from one client thread...
//! let tickets: Vec<_> = (0..8u64)
//!     .map(|i| {
//!         session.submit_write(move |tx| {
//!             tx.update(ObjectId(i), |old| {
//!                 let mut v = old.to_vec();
//!                 v[0] = v[0].wrapping_add(1);
//!                 v
//!             })?;
//!             Ok(())
//!         })
//!     })
//!     .collect();
//! // ...then collect the results (or call `session.drain()` as a barrier).
//! for ticket in tickets {
//!     ticket.wait().unwrap();
//! }
//! session.drain().unwrap();
//! cluster.shutdown();
//! ```

use std::time::{Duration, Instant};

use bytes::Bytes;
use zeus_proto::{NodeId, ObjectId, OwnershipRequestKind};

use crate::stats::{LatencyHistogram, NodeStats};
use crate::txn::{TxCtx, TxError};

// ---------------------------------------------------------------------------
// Typed transaction payloads
// ---------------------------------------------------------------------------

/// A transaction result that can cross the node command channel.
///
/// The threaded runtime executes transaction closures on the node thread and
/// ships the result back over an object-safe channel, so results are encoded
/// to bytes in flight and decoded on arrival; the simulated runtime returns
/// them directly. Implementations must round-trip: `decode(encode(x)) ==
/// Some(x)`.
pub trait TxPayload: Sized + Send + 'static {
    /// Serialises the value.
    fn encode(&self) -> Vec<u8>;
    /// Deserialises a value previously produced by [`TxPayload::encode`].
    /// `None` means the bytes are not a valid encoding (a type mismatch,
    /// which is a caller bug — the session surfaces it as a panic).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl TxPayload for () {
    fn encode(&self) -> Vec<u8> {
        Vec::new()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl TxPayload for bool {
    fn encode(&self) -> Vec<u8> {
        vec![u8::from(*self)]
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

macro_rules! int_payload {
    ($($ty:ty),*) => {$(
        impl TxPayload for $ty {
            fn encode(&self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_payload!(u32, u64, i64, f64);

impl TxPayload for usize {
    fn encode(&self) -> Vec<u8> {
        (*self as u64).to_le_bytes().to_vec()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        u64::decode(bytes).map(|v| v as usize)
    }
}

impl TxPayload for Vec<u8> {
    fn encode(&self) -> Vec<u8> {
        self.clone()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl TxPayload for Bytes {
    fn encode(&self) -> Vec<u8> {
        self.to_vec()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(Bytes::from(bytes.to_vec()))
    }
}

impl TxPayload for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<A: TxPayload, B: TxPayload> TxPayload for (A, B) {
    fn encode(&self) -> Vec<u8> {
        let a = self.0.encode();
        let b = self.1.encode();
        let mut out = Vec::with_capacity(8 + a.len() + b.len());
        out.extend_from_slice(&(a.len() as u64).to_le_bytes());
        out.extend_from_slice(&a);
        out.extend_from_slice(&b);
        out
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let len = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        let rest = bytes.get(8..)?;
        if rest.len() < len {
            return None;
        }
        Some((A::decode(&rest[..len])?, B::decode(&rest[len..])?))
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// How a session retries transient transaction aborts.
///
/// Retryability is classified by [`TxError::is_retryable`]; the policy
/// supplies the budget and the exponential back-off the paper's §6.2
/// deadlock-avoidance scheme requires (contending coordinators must stop
/// ping-ponging ownership). The default mirrors the runtimes' historical
/// behavior: the cluster's `max_ownership_retries` budget with a 100 µs
/// back-off base capped at 6.4 ms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transaction attempts (including the first) before the
    /// session gives up with [`TxError::RetriesExhausted`].
    pub max_attempts: usize,
    /// Back-off before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on the per-attempt back-off.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 256,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(6_400),
        }
    }
}

impl RetryPolicy {
    /// A policy with the given attempt budget and the default back-off.
    pub fn with_budget(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// A policy that never retries: the first abort is returned as-is.
    pub fn no_retry() -> Self {
        Self::with_budget(1)
    }

    /// The back-off to sleep before attempt `attempt` (0-based: the first
    /// retry is attempt 1), exponential and capped at `max_backoff`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let factor = 1u32 << attempt.min(16) as u32;
        (self.base_backoff * factor).min(self.max_backoff)
    }

    /// Whether a transaction that has completed `attempts` attempts and
    /// aborted with `error` should be retried.
    pub fn should_retry(&self, error: &TxError, attempts: usize) -> bool {
        attempts < self.max_attempts && error.is_retryable()
    }
}

// ---------------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------------

/// The encoded result of a submitted transaction plus the instant the node
/// resolved it, shipped over the ticket's reply channel. The timestamp is
/// recorded on the node thread, so per-ticket latency (resolve minus
/// submit) reflects when the transaction actually finished — not whenever
/// the client got around to polling or draining.
#[derive(Debug)]
pub(crate) struct TicketReply {
    pub(crate) result: Result<Vec<u8>, TxError>,
    pub(crate) resolved_at: Instant,
}

/// A transaction submitted with [`Session::submit_write`], resolving to its
/// typed result.
///
/// Dropping a ticket abandons the *result*, not the transaction: the
/// submission still executes (and still counts toward
/// [`Session::drain`]'s barrier).
#[derive(Debug)]
pub struct TxTicket<T: TxPayload> {
    state: TicketState<T>,
}

#[derive(Debug)]
enum TicketState<T> {
    /// The result is already known (simulated runtime, or polled), plus the
    /// instant it resolved.
    Ready(Option<Result<T, TxError>>, Instant),
    /// The node thread will ship the encoded result over this channel.
    Pending(crossbeam::channel::Receiver<TicketReply>),
}

impl<T: TxPayload> TxTicket<T> {
    /// A ticket that is already resolved.
    pub(crate) fn ready(result: Result<T, TxError>) -> Self {
        TxTicket {
            state: TicketState::Ready(Some(result), Instant::now()),
        }
    }

    /// A ticket resolved by a future message on `rx`.
    pub(crate) fn pending(rx: crossbeam::channel::Receiver<TicketReply>) -> Self {
        TxTicket {
            state: TicketState::Pending(rx),
        }
    }

    fn decode(encoded: Result<Vec<u8>, TxError>) -> Result<T, TxError> {
        encoded.map(|bytes| {
            T::decode(&bytes).expect("TxPayload type mismatch between submit and wait")
        })
    }

    /// Blocks until the transaction resolves and returns its result. A
    /// ticket whose node shut down resolves to [`TxError::NodeUnavailable`].
    pub fn wait(self) -> Result<T, TxError> {
        self.wait_timed().0
    }

    /// Like [`TxTicket::wait`], additionally returning the instant the node
    /// resolved the transaction — the end point for per-ticket latency
    /// measurements of pipelined submissions.
    pub fn wait_timed(self) -> (Result<T, TxError>, Instant) {
        match self.state {
            TicketState::Ready(result, at) => (result.expect("ticket already consumed"), at),
            TicketState::Pending(rx) => match rx.recv() {
                Ok(reply) => (Self::decode(reply.result), reply.resolved_at),
                Err(_) => (Err(TxError::NodeUnavailable), Instant::now()),
            },
        }
    }

    /// Returns the result if the transaction has resolved, `None` if it is
    /// still in flight. After `Some` is returned the ticket is spent.
    pub fn try_poll(&mut self) -> Option<Result<T, TxError>> {
        self.try_poll_timed().map(|(result, _)| result)
    }

    /// Like [`TxTicket::try_poll`], additionally returning the instant the
    /// node resolved the transaction.
    pub fn try_poll_timed(&mut self) -> Option<(Result<T, TxError>, Instant)> {
        match &mut self.state {
            TicketState::Ready(result, at) => result.take().map(|r| (r, *at)),
            TicketState::Pending(rx) => {
                use crossbeam::channel::TryRecvError;
                match rx.try_recv() {
                    Ok(reply) => {
                        let at = reply.resolved_at;
                        self.state = TicketState::Ready(None, at);
                        Some((Self::decode(reply.result), at))
                    }
                    Err(TryRecvError::Disconnected) => {
                        let at = Instant::now();
                        self.state = TicketState::Ready(None, at);
                        Some((Err(TxError::NodeUnavailable), at))
                    }
                    Err(TryRecvError::Empty) => None,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A client's connection to one node of a cluster.
///
/// Obtained from [`ClusterDriver::handle`]; cloneable and sendable, so one
/// session can be shared across client threads (clones share the
/// [`drain`](Session::drain) barrier). See the [module docs](self) for
/// worked examples.
pub trait Session: Clone + Send + 'static {
    /// The node this session talks to.
    fn node(&self) -> NodeId;

    /// Replaces the session's retry policy (builder style).
    #[must_use]
    fn with_retry(self, policy: RetryPolicy) -> Self;

    /// The session's current retry policy.
    fn retry_policy(&self) -> &RetryPolicy;

    /// Executes a write transaction, blocking while ownership of the objects
    /// it touches is acquired (the paper's §3.2 blocking model: transactions
    /// pipeline, ownership requests stall). Transient aborts are retried per
    /// the session's [`RetryPolicy`].
    fn write_txn<T, F>(&self, f: F) -> Result<T, TxError>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static;

    /// Executes a strictly serializable read-only transaction locally on
    /// this node's replicas (§5.3) — no network traffic either way.
    fn read_txn<T, F>(&self, f: F) -> Result<T, TxError>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static;

    /// Submits a write transaction without waiting for it: the returned
    /// [`TxTicket`] resolves when it commits or terminally aborts. On the
    /// threaded runtime a single client thread can keep N submissions in
    /// flight (they batch into the node's command path); on the simulated
    /// runtime submission executes synchronously and the ticket is born
    /// resolved.
    fn submit_write<T, F>(&self, f: F) -> TxTicket<T>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static;

    /// Barrier: blocks until every transaction submitted through this
    /// session (and its clones) has resolved. Tickets dropped without
    /// [`TxTicket::wait`] are still awaited.
    fn drain(&self) -> Result<(), TxError>;

    /// Explicitly migrates `object` to this node (the bulk-migration and
    /// hot-object scenarios of Figures 10–11).
    fn acquire(&self, object: ObjectId, kind: OwnershipRequestKind) -> Result<(), TxError>;

    /// This node's statistics and ownership-latency histogram.
    /// [`TxError::NodeUnavailable`] if the node is gone.
    fn stats(&self) -> Result<(NodeStats, LatencyHistogram), TxError>;
}

// ---------------------------------------------------------------------------
// Admin surface
// ---------------------------------------------------------------------------

/// Error from an administrative cluster operation.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminError {
    /// The node id is outside the deployment.
    UnknownNode(NodeId),
    /// Restart was requested for a node that is not crashed.
    NotCrashed(NodeId),
    /// The driver does not support this operation (e.g. process crash on a
    /// runtime without a process model).
    Unsupported {
        /// The operation that was requested.
        op: &'static str,
    },
    /// A migration failed in the transaction layer.
    Migrate(TxError),
}

impl std::fmt::Display for AdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdminError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            AdminError::NotCrashed(n) => write!(f, "node {n:?} is not crashed"),
            AdminError::Unsupported { op } => {
                write!(f, "operation `{op}` is not supported by this driver")
            }
            AdminError::Migrate(e) => write!(f, "migration failed: {e:?}"),
        }
    }
}

impl std::error::Error for AdminError {}

/// The administrative surface of a cluster: membership mutation, fault
/// injection and placement migration, obtained from
/// [`ClusterDriver::admin`].
///
/// Every membership-mutating operation ([`expel`](Admin::expel),
/// [`readmit`](Admin::readmit), and the crash/restart pair) is routed
/// through the replicated view service: the driver forwards it to every view
/// replica, and the change commits once a majority agrees — no single
/// "acting manager" whose death can wedge administration.
#[derive(Debug)]
pub struct Admin<'a, D: ClusterDriver + ?Sized> {
    driver: &'a D,
}

impl<D: ClusterDriver + ?Sized> Admin<'_, D> {
    fn check(&self, node: NodeId) -> Result<(), AdminError> {
        if (node.0 as usize) < self.driver.nodes() {
            Ok(())
        } else {
            Err(AdminError::UnknownNode(node))
        }
    }

    /// Expels `node` from the membership and bans it from heartbeat
    /// re-admission (scale-in, or evicting a misbehaving node). Committed by
    /// a majority of view replicas.
    pub fn expel(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.admin_expel(node)
    }

    /// Lifts the ban on `node` and proposes its re-admission. The node joins
    /// the next committed view with a fresh admission epoch (its replica
    /// state is discarded and re-acquired through the ownership protocol).
    pub fn readmit(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.admin_readmit(node)
    }

    /// Crashes `node` (fail-stop: it processes nothing further until
    /// [`restart`](Admin::restart)). The failure detector expels it once its
    /// leases lapse.
    pub fn crash(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.admin_crash(node)
    }

    /// Restarts a crashed `node` with empty state; its heartbeats re-admit
    /// it through the view service.
    pub fn restart(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.admin_restart(node)
    }

    /// Cuts every link between `node` and the rest of the cluster. The node
    /// keeps running — it stops hearing heartbeats, fences itself after a
    /// lease of silence ([`TxError::Fenced`]) and is eventually expelled.
    pub fn isolate(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.fault_isolate(node);
        Ok(())
    }

    /// Heals every link between `node` and the rest of the cluster; its next
    /// heartbeat re-admits it (or renews its leases if it was never
    /// expelled).
    pub fn heal(&self, node: NodeId) -> Result<(), AdminError> {
        self.check(node)?;
        self.driver.fault_heal(node);
        Ok(())
    }

    /// Heals every injected link fault at once.
    pub fn heal_all(&self) {
        self.driver.fault_heal_all();
    }

    /// Migrates `object` to `to` (acquire-owner), returning the observed
    /// ownership latency in microseconds.
    pub fn migrate(&self, object: ObjectId, to: NodeId) -> Result<u64, AdminError> {
        self.check(to)?;
        self.driver.migrate(object, to).map_err(AdminError::Migrate)
    }
}

// ---------------------------------------------------------------------------
// Cluster driver
// ---------------------------------------------------------------------------

/// A running Zeus cluster, driven uniformly across runtimes.
///
/// Implemented by [`crate::SimCluster`] (deterministic, single-threaded) and
/// [`crate::ThreadedCluster`] (one OS thread per node): benches, examples,
/// chaos scenarios and integration tests write their driver loops once
/// against this trait and run them on either.
pub trait ClusterDriver {
    /// The session type this driver hands out.
    type Session: Session;

    /// Number of nodes in the deployment.
    fn nodes(&self) -> usize;

    /// Opens a session to node `id`. Each call returns an independent
    /// session (its own [`Session::drain`] barrier).
    fn handle(&self, id: NodeId) -> Self::Session;

    /// Creates `object` on every node with its home placement: `owner` plus
    /// the configured number of reader replicas.
    fn create_object(&self, object: ObjectId, data: Bytes, owner: NodeId);

    /// Migrates `object` to `to` (acquire-owner), returning the observed
    /// ownership latency in microseconds (simulated ticks on the simulated
    /// runtime, wall clock on the threaded one).
    fn migrate(&self, object: ObjectId, to: NodeId) -> Result<u64, TxError>;

    /// Statistics aggregated over all live nodes.
    fn aggregate_stats(&self) -> NodeStats;

    /// Transport-level traffic counters.
    fn net_stats(&self) -> zeus_net::NetStats;

    /// Lets in-flight protocol work (pipelined reliable commits, pending
    /// recoveries) finish: the simulated runtime drives the network until
    /// quiescent, the threaded runtime's node threads are always running so
    /// this is a no-op.
    fn quiesce(&self);

    /// The administrative surface: membership mutation, fault injection and
    /// migration, all behind one typed handle (see [`Admin`]).
    fn admin(&self) -> Admin<'_, Self>
    where
        Self: Sized,
    {
        Admin { driver: self }
    }

    // ------------------------------------------------------------------
    // Admin SPI — reached through [`ClusterDriver::admin`], not called
    // directly. Membership-mutating operations must route through the view
    // service (the driver forwards them to every view replica).
    // ------------------------------------------------------------------

    /// Expels `node`: ban + view-service expulsion proposal on every view
    /// replica.
    fn admin_expel(&self, node: NodeId) -> Result<(), AdminError> {
        let _ = node;
        Err(AdminError::Unsupported { op: "expel" })
    }

    /// Re-admits `node`: unban + view-service admission proposal on every
    /// view replica.
    fn admin_readmit(&self, node: NodeId) -> Result<(), AdminError> {
        let _ = node;
        Err(AdminError::Unsupported { op: "readmit" })
    }

    /// Fail-stops `node`.
    fn admin_crash(&self, node: NodeId) -> Result<(), AdminError> {
        let _ = node;
        Err(AdminError::Unsupported { op: "crash" })
    }

    /// Restarts a crashed `node` with empty state.
    fn admin_restart(&self, node: NodeId) -> Result<(), AdminError> {
        let _ = node;
        Err(AdminError::Unsupported { op: "restart" })
    }

    // ------------------------------------------------------------------
    // Fault SPI (the fig11-class partition scenarios) — reached through
    // [`Admin::isolate`] / [`Admin::heal`] / [`Admin::heal_all`].
    // ------------------------------------------------------------------

    /// Cuts every link between `node` and the rest of the cluster.
    fn fault_isolate(&self, node: NodeId);

    /// Heals every link between `node` and the rest of the cluster.
    fn fault_heal(&self, node: NodeId);

    /// Heals every injected link fault at once.
    fn fault_heal_all(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: TxPayload + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(T::decode(&value.encode()), Some(value));
    }

    #[test]
    fn payloads_round_trip() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(42u32);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(3.25f64);
        round_trip(123usize);
        round_trip(vec![1u8, 2, 3]);
        round_trip(Bytes::from_static(b"abc"));
        round_trip("héllo".to_string());
        round_trip((9u64, "pair".to_string()));
        round_trip(((1u32, 2u64), vec![3u8]));
    }

    #[test]
    fn payload_decode_rejects_malformed() {
        assert_eq!(<()>::decode(&[1]), None);
        assert_eq!(bool::decode(&[2]), None);
        assert_eq!(u64::decode(&[0; 7]), None);
        assert_eq!(<(u32, u32)>::decode(&[0; 4]), None);
        assert_eq!(String::decode(&[0xff, 0xfe]), None);
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(6), Duration::from_micros(6_400));
        assert_eq!(p.backoff(60), Duration::from_micros(6_400), "capped");
    }

    #[test]
    fn retry_policy_classifies_with_budget() {
        let p = RetryPolicy::with_budget(3);
        assert!(p.should_retry(&TxError::LockConflict, 1));
        assert!(p.should_retry(&TxError::LockConflict, 2));
        assert!(!p.should_retry(&TxError::LockConflict, 3), "budget spent");
        assert!(!p.should_retry(&TxError::Fenced, 1), "not retryable");
        assert!(!RetryPolicy::no_retry().should_retry(&TxError::LockConflict, 1));
    }

    #[test]
    fn ready_tickets_resolve_immediately() {
        let mut t: TxTicket<u64> = TxTicket::ready(Ok(7));
        assert_eq!(t.try_poll(), Some(Ok(7)));
        assert_eq!(t.try_poll(), None, "spent");
        let t: TxTicket<u64> = TxTicket::ready(Err(TxError::Fenced));
        assert_eq!(t.wait(), Err(TxError::Fenced));
    }

    fn reply(result: Result<Vec<u8>, TxError>) -> TicketReply {
        TicketReply {
            result,
            resolved_at: Instant::now(),
        }
    }

    #[test]
    fn pending_tickets_poll_and_wait() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let mut t: TxTicket<u64> = TxTicket::pending(rx);
        assert_eq!(t.try_poll(), None);
        tx.send(reply(Ok(9u64.encode()))).unwrap();
        assert_eq!(t.try_poll(), Some(Ok(9)));

        let (tx, rx) = crossbeam::channel::bounded(1);
        let t: TxTicket<u64> = TxTicket::pending(rx);
        tx.send(reply(Ok(11u64.encode()))).unwrap();
        assert_eq!(t.wait(), Ok(11));

        // A dropped node thread resolves tickets to NodeUnavailable.
        let (tx, rx) = crossbeam::channel::bounded::<TicketReply>(1);
        drop(tx);
        let t: TxTicket<u64> = TxTicket::pending(rx);
        assert_eq!(t.wait(), Err(TxError::NodeUnavailable));
    }

    #[test]
    fn timed_accessors_expose_the_resolve_instant() {
        let before = Instant::now();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let mut t: TxTicket<u64> = TxTicket::pending(rx);
        assert!(t.try_poll_timed().is_none());
        let sent_at = Instant::now();
        tx.send(TicketReply {
            result: Ok(5u64.encode()),
            resolved_at: sent_at,
        })
        .unwrap();
        let (result, at) = t.try_poll_timed().unwrap();
        assert_eq!(result, Ok(5));
        assert_eq!(
            at, sent_at,
            "resolve instant is the sender's, not poll time"
        );
        assert!(at >= before);

        // Ready tickets are stamped at creation, and wait_timed agrees.
        let t: TxTicket<u64> = TxTicket::ready(Ok(7));
        let (result, at) = t.wait_timed();
        assert_eq!(result, Ok(7));
        assert!(at >= before && at <= Instant::now());
    }
}
