//! A single Zeus server: store + protocols + transaction layer.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use zeus_commit::{CommitAction, CommitEngine};
use zeus_locality::{AccessKind, LocalityEngine, PlacementAction};
use zeus_membership::{MembershipEngine, MembershipEvent};
use zeus_ownership::{OwnershipAction, OwnershipEngine, OwnershipHost};
use zeus_proto::messages::NackReason;
use zeus_proto::{
    AccessLevel, DataTs, Epoch, MembershipMsg, NodeId, ObjectId, ObjectUpdate,
    OwnershipRequestKind, PolicyKind, PolicyStats, ReplicaSet, RequestId, TState, ViewMsg,
};
use zeus_store::{LockManager, ObjectEntry, Store};
use zeus_view::{ViewEvent, ViewReplica};

use crate::config::ZeusConfig;
use crate::message::Message;
use crate::stats::{LatencyHistogram, NodeStats};
use crate::txn::{ReadOutcome, TxCtx, TxError, WriteOutcome};

/// View of node-local state handed to the ownership engine.
struct HostView<'a> {
    store: &'a Store,
    commit: &'a CommitEngine,
}

impl OwnershipHost for HostView<'_> {
    fn object_value(&self, object: ObjectId) -> Option<(DataTs, Bytes)> {
        self.store.with(object, |e| (e.ts, e.data.clone()))
    }
    fn has_pending_commits(&self, object: ObjectId) -> bool {
        self.commit.object_has_pending_commit(object)
            || self
                .store
                .with(object, |e| e.has_pending_commits())
                .unwrap_or(false)
    }
}

/// Terminal state of an ownership request, as seen by the transaction layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Still in flight (or queued for retry).
    Pending,
    /// Completed; the access level has been installed.
    Completed,
    /// Failed terminally.
    Failed(NackReason),
}

/// One Zeus server.
///
/// The node is a passive state machine: the hosting runtime delivers network
/// messages via [`ZeusNode::handle_message`], advances time via
/// [`ZeusNode::tick`], executes transactions via
/// [`ZeusNode::execute_write`] / [`ZeusNode::execute_read`], and ships
/// whatever [`ZeusNode::drain_outbox`] returns.
#[derive(Debug)]
pub struct ZeusNode {
    id: NodeId,
    config: ZeusConfig,
    store: Store,
    locks: LockManager,
    ownership: OwnershipEngine,
    commit: CommitEngine,
    membership: MembershipEngine,
    /// This node's replica of the view service. Every node constructs one;
    /// replicas outside the configured view-replica set are inert (they
    /// neither propose nor grant), so membership decisions always go through
    /// a majority of the first `view_replicas` nodes.
    view: ViewReplica,
    /// Last tick at which this node pushed its directory digest to its
    /// directory peers (anti-entropy, heartbeat cadence).
    last_dir_push: u64,
    outbox: Vec<(NodeId, Message)>,
    completed_reqs: HashSet<RequestId>,
    failed_reqs: HashMap<RequestId, NackReason>,
    retry_queue: Vec<RequestId>,
    request_started_at: HashMap<RequestId, u64>,
    /// In-flight acquisitions keyed by what they ask for, so batched
    /// transactions needing the same object can share one protocol request
    /// (only consulted when `coalesce_acquires` is on).
    inflight_acquires: HashMap<(ObjectId, OwnershipRequestKind), RequestId>,
    /// How many waiters reference each in-flight request. A request is only
    /// really abandoned when its last waiter gives up — otherwise one parked
    /// transaction's back-off would cancel a request its batch peers still
    /// wait on.
    acquire_refs: HashMap<RequestId, usize>,
    /// Whether `acquire` may return an already-in-flight request for the
    /// same `(object, kind)`. Enabled by the threaded runtime's batched
    /// command loop; the simulator leaves it off so chaos replay semantics
    /// are untouched.
    coalesce_acquires: bool,
    ownership_latency: LatencyHistogram,
    stats: NodeStats,
    now: u64,
    last_retransmit: u64,
    /// Inbox-backlog signal from the runtime (see [`ZeusNode::set_congested`]).
    congested: bool,
    /// Current congestion back-off multiplier, 1..=`CONGESTED_RETRANSMIT_STRETCH_MAX`.
    congestion_stretch: u64,
    /// Transport-estimated retransmission interval (see
    /// [`ZeusNode::set_retransmit_interval`]); `None` keeps the configured
    /// fixed `retransmit_ticks`.
    retransmit_override: Option<u64>,
    /// The adaptive locality engine (ROADMAP item 3). `None` under the
    /// default `Reactive` policy — no tracking, no planning, byte-identical
    /// to the pre-engine behavior.
    locality: Option<LocalityEngine>,
    /// Policy-issued acquisitions still in flight, keyed by request; at most
    /// one per object, reaped by [`ZeusNode::tick`].
    policy_reqs: HashMap<RequestId, ObjectId>,
}

/// Cap on the congestion back-off multiplier of the retransmit interval.
/// The in-process transports never lose messages, so when the inbox is
/// backlogged every unacknowledged R-INV/REQ is either queued at the peer or
/// queued *here* — retransmitting it only adds to the backlog. Unchecked,
/// that feedback loop is a congestion collapse: a node that falls one
/// retransmit interval behind under open-loop overload re-sends every
/// in-flight message each interval, which grows the very backlog that made
/// it late (observed as multi-GB mailboxes and 100x throughput loss past
/// the saturation knee). The interval therefore doubles on every interval
/// that still sees a backlog (up to this cap) and snaps back to 1x the
/// moment the inbox is clear — retransmit traffic provably decays below any
/// fixed drain rate, while genuine loss recovery (partitions drop messages;
/// receivers drop stale-epoch messages) stays live at a bounded rate and at
/// full speed on an idle node.
const CONGESTED_RETRANSMIT_STRETCH_MAX: u64 = 256;

impl ZeusNode {
    /// Creates node `id` of a deployment described by `config`.
    pub fn new(id: NodeId, config: ZeusConfig) -> Self {
        let directory = config.directory();
        let mut membership = MembershipEngine::new(id, config.nodes, config.lease_ticks);
        membership.set_readmit_suspects(config.readmit_suspects);
        // Proposal retries ride the heartbeat cadence; grants expire after a
        // full lease so a crashed proposer cannot wedge agreement for longer
        // than the failure detector takes to notice any other death.
        let view = ViewReplica::new(
            id,
            config.view_replica_set(),
            config.all_nodes(),
            (config.lease_ticks / 4).max(1),
            config.lease_ticks,
        );
        ZeusNode {
            id,
            store: Store::new(config.store_shards),
            locks: LockManager::new(),
            ownership: OwnershipEngine::new(id, directory, config.nodes),
            commit: CommitEngine::new(id, config.nodes),
            membership,
            view,
            last_dir_push: 0,
            outbox: Vec::new(),
            completed_reqs: HashSet::new(),
            failed_reqs: HashMap::new(),
            retry_queue: Vec::new(),
            request_started_at: HashMap::new(),
            inflight_acquires: HashMap::new(),
            acquire_refs: HashMap::new(),
            coalesce_acquires: false,
            ownership_latency: LatencyHistogram::default(),
            stats: NodeStats::default(),
            now: 0,
            last_retransmit: 0,
            congested: false,
            congestion_stretch: 1,
            retransmit_override: None,
            locality: match config.policy {
                PolicyKind::Reactive => None,
                kind => Some(LocalityEngine::new(
                    kind,
                    config.policy_interval_ticks,
                    config.policy_budget,
                    // Per-node seed: equal-priority candidates are ordered
                    // the same way on every run, differently per node.
                    u64::from(id.0),
                )),
            },
            policy_reqs: HashMap::new(),
            config,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ZeusConfig {
        &self.config
    }

    /// Read access to the local object store (tests and examples).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> Epoch {
        self.membership.epoch()
    }

    /// The membership view this node currently has installed.
    pub fn cluster_view(&self) -> &zeus_membership::View {
        self.membership.view()
    }

    /// Whether the ownership protocol currently accepts requests (it is
    /// paused between a view change and the completion of commit recovery).
    pub fn ownership_enabled(&self) -> bool {
        self.membership.ownership_enabled()
    }

    /// Per-node statistics.
    pub fn stats(&self) -> NodeStats {
        let mut s = self.stats.clone();
        s.objects_owned = self.store.owned_ids().len() as u64;
        s
    }

    /// Ownership protocol counters.
    pub fn ownership_stats(&self) -> &zeus_ownership::OwnershipStats {
        self.ownership.stats()
    }

    /// Commit protocol counters.
    pub fn commit_stats(&self) -> &zeus_commit::CommitStats {
        self.commit.stats()
    }

    /// Locality-policy counters (all zero under the default reactive
    /// policy, which never plans anything).
    pub fn policy_stats(&self) -> PolicyStats {
        self.locality
            .as_ref()
            .map(|e| *e.stats())
            .unwrap_or_default()
    }

    /// Latency histogram of completed ownership requests (ticks).
    pub fn ownership_latency(&self) -> &LatencyHistogram {
        &self.ownership_latency
    }

    /// Number of reliable commits still in flight at this coordinator.
    pub fn outstanding_commits(&self) -> usize {
        self.commit.outstanding_commits()
    }

    /// The owner of `object` according to this node's *directory* metadata,
    /// if this node arbitrates the object (directory replica or owner).
    /// Returns `None` when the node holds no ownership metadata, and
    /// `Some(None)` when the object currently has no live owner.
    pub fn directory_owner(&self, object: ObjectId) -> Option<Option<NodeId>> {
        self.ownership.replicas_of(object).map(|r| r.owner)
    }

    /// Whether this node currently refuses transactions because it is
    /// isolated from every peer of its view (or was removed from the view) —
    /// the node-side half of the lease contract (§3.1). Serving while fenced
    /// could expose values the rest of the cluster has already superseded.
    pub fn is_fenced(&self) -> bool {
        self.membership.is_isolated(self.now)
    }

    /// Whether this node currently owns `object`.
    pub fn owns(&self, object: ObjectId) -> bool {
        self.store
            .with(object, |e| e.level == AccessLevel::Owner)
            .unwrap_or(false)
    }

    /// Access level of this node for `object`.
    pub fn level_of(&self, object: ObjectId) -> AccessLevel {
        self.store
            .with(object, |e| e.level)
            .unwrap_or(AccessLevel::NonReplica)
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Creates an object with the given initial placement. Every node of the
    /// deployment must be told about the object: replicas store the data,
    /// directory nodes register the ownership metadata, other nodes ignore
    /// it. (The cluster runtimes call this on every node at load time; at
    /// run time, first-touch `AcquireOwner` creates objects dynamically.)
    pub fn create_object(
        &mut self,
        object: ObjectId,
        data: impl Into<Bytes>,
        replicas: ReplicaSet,
    ) {
        self.ownership.register_object(object, replicas.clone());
        let level = replicas.level_of(self.id);
        if level.is_replica() {
            self.store
                .insert(object, ObjectEntry::new(data, level, replicas));
        }
    }

    /// Destroys an object locally (`free`). The caller is responsible for
    /// doing this on every replica (typically from a write transaction).
    pub fn destroy_object(&mut self, object: ObjectId) {
        self.store.remove(object);
    }

    // ------------------------------------------------------------------
    // Ownership acquisition
    // ------------------------------------------------------------------

    /// Explicitly requests an access level for `object` (used by the
    /// transaction layer and directly by the migration experiments of
    /// Figures 10–11).
    pub fn acquire(&mut self, object: ObjectId, kind: OwnershipRequestKind) -> RequestId {
        if self.coalesce_acquires {
            if let Some(&req) = self.inflight_acquires.get(&(object, kind)) {
                if self.request_state(req) == RequestState::Pending {
                    // Another transaction of the current batch already asked
                    // for exactly this access: share its request instead of
                    // putting a second REQ on the wire.
                    *self.acquire_refs.entry(req).or_insert(1) += 1;
                    return req;
                }
            }
        }
        self.stats.ownership_requests += 1;
        let host = HostView {
            store: &self.store,
            commit: &self.commit,
        };
        let (req_id, actions) = self.ownership.request_access(object, kind, &host);
        self.request_started_at.insert(req_id, self.now);
        self.acquire_refs.insert(req_id, 1);
        if self.coalesce_acquires {
            self.inflight_acquires.insert((object, kind), req_id);
        }
        self.process_ownership_actions(actions);
        req_id
    }

    /// Enables (or disables) sharing of in-flight ownership requests across
    /// the transactions of one command batch. See [`ZeusNode::acquire`].
    pub fn set_coalesce_acquires(&mut self, on: bool) {
        self.coalesce_acquires = on;
        if !on {
            self.inflight_acquires.clear();
        }
    }

    /// Records that the hosting runtime executed a batch of `n` drained
    /// commands as one unit (one inbox drain, one outbox flush). Feeds the
    /// `batched_commands` / `batch_occupancy_hwm` counters of [`NodeStats`].
    pub fn note_command_batch(&mut self, n: usize) {
        let n = n as u64;
        if n >= 2 {
            self.stats.batched_commands += n;
        }
        self.stats.batch_occupancy_hwm = self.stats.batch_occupancy_hwm.max(n);
    }

    /// Abandons a pending ownership request the caller gave up waiting for
    /// (back-off, §6.2). Without this, a request that keeps being NACKed
    /// retryably — e.g. while a peer's recovery drags on — would retry and
    /// retransmit forever, pinning the node in a non-quiescent state long
    /// after its transaction moved on.
    pub fn abandon_request(&mut self, req: RequestId) {
        if let Some(refs) = self.acquire_refs.get_mut(&req) {
            if *refs > 1 {
                *refs -= 1;
                return;
            }
            self.acquire_refs.remove(&req);
        }
        self.inflight_acquires.retain(|_, &mut r| r != req);
        self.ownership.abandon_request(req);
        self.retry_queue.retain(|&r| r != req);
        self.request_started_at.remove(&req);
    }

    /// State of a previously issued ownership request.
    pub fn request_state(&self, req: RequestId) -> RequestState {
        if self.completed_reqs.contains(&req) {
            RequestState::Completed
        } else if let Some(reason) = self.failed_reqs.get(&req) {
            RequestState::Failed(*reason)
        } else {
            RequestState::Pending
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Executes a write transaction on worker thread `thread`.
    ///
    /// The closure runs immediately. If it opened objects this node does not
    /// hold at the required level, ownership requests are issued and
    /// [`WriteOutcome::OwnershipPending`] is returned — the caller re-executes
    /// once they complete (the application thread simply blocks in the
    /// threaded runtime). Otherwise the transaction commits locally and its
    /// reliable commit is pipelined (the call does *not* wait for
    /// replication, §5.2).
    pub fn execute_write<R>(
        &mut self,
        thread: u16,
        f: impl FnOnce(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> WriteOutcome<R> {
        if self.is_fenced() {
            self.stats.txs_fenced += 1;
            return WriteOutcome::Aborted {
                error: TxError::Fenced,
            };
        }
        let (result, ws, missing) = {
            let mut ctx = TxCtx::write_tx(&self.store);
            let result = f(&mut ctx);
            let (ws, missing) = ctx.into_parts();
            (result, ws, missing)
        };

        if !missing.is_empty() {
            self.stats.txs_needing_ownership += 1;
            for (object, kind) in &missing {
                let access = match kind {
                    OwnershipRequestKind::AcquireOwner => AccessKind::Write,
                    _ => AccessKind::Read,
                };
                self.record_access(*object, access, false);
            }
            let requests = missing
                .into_iter()
                .map(|(object, kind)| self.acquire(object, kind))
                .collect();
            return WriteOutcome::OwnershipPending { requests };
        }

        let value = match result {
            Ok(v) => v,
            Err(error) => {
                self.stats.txs_aborted += 1;
                return WriteOutcome::Aborted { error };
            }
        };

        // Local commit (§3.2 step 2): per-thread local ownership via locks,
        // then opacity validation of the read set.
        let write_ids = ws.written_ids();
        if !self.locks.try_acquire_all(thread, &write_ids) {
            self.stats.txs_aborted += 1;
            return WriteOutcome::Aborted {
                error: TxError::LockConflict,
            };
        }
        let reads_valid = ws.validate_reads(|id| self.store.with(id, |e| e.ts));
        if !reads_valid {
            self.locks.release_all(thread, &write_ids);
            self.stats.txs_aborted += 1;
            return WriteOutcome::Aborted {
                error: TxError::ValidationFailed,
            };
        }

        // Apply the private copies to the store and gather followers.
        let mut updates = Vec::with_capacity(write_ids.len());
        let mut followers: Vec<NodeId> = Vec::new();
        for (object, data) in ws.write_set() {
            let (ts, readers) = self
                .store
                .with_mut(object, |e| {
                    e.apply_local_write(data.clone());
                    (e.ts, e.replicas.readers.clone())
                })
                .expect("written object exists at owner");
            updates.push(ObjectUpdate::new(object, ts, data.clone()));
            for r in readers {
                if r != self.id && !followers.contains(&r) {
                    followers.push(r);
                }
            }
        }
        self.locks.release_all(thread, &write_ids);
        if self.locality.is_some() {
            for object in &write_ids {
                self.record_access(*object, AccessKind::Write, true);
            }
        }

        // Reliable commit (§3.2 step 3), pipelined.
        let (tx_id, actions) = self.commit.begin_commit(thread, updates, followers);
        self.process_commit_actions(actions);
        self.stats.write_txs_committed += 1;
        WriteOutcome::Committed { tx_id, value }
    }

    /// Executes a strictly serializable read-only transaction locally, from
    /// whichever replica this node holds (§5.3). Never generates traffic.
    pub fn execute_read<R>(
        &mut self,
        f: impl FnOnce(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> ReadOutcome<R> {
        if self.is_fenced() {
            self.stats.txs_fenced += 1;
            return ReadOutcome::Aborted {
                error: TxError::Fenced,
            };
        }
        let (result, ws) = {
            let mut ctx = TxCtx::read_tx(&self.store);
            let result = f(&mut ctx);
            let (ws, _) = ctx.into_parts();
            (result, ws)
        };
        let value = match result {
            Ok(v) => v,
            Err(error) => {
                // A read this node cannot serve is exactly the signal the
                // locality engine widens replication on.
                if let TxError::NotReplicated { object } = &error {
                    self.record_access(*object, AccessKind::Read, false);
                }
                self.stats.txs_aborted += 1;
                return ReadOutcome::Aborted { error };
            }
        };
        // Local commit of a read-only transaction: every object read must
        // still be Valid at an unchanged version.
        let consistent = ws.read_set().all(|(object, ts)| {
            self.store
                .with(object, |e| e.t_state == TState::Valid && e.ts == ts)
                .unwrap_or(false)
        });
        if consistent {
            if self.locality.is_some() {
                let objects: Vec<ObjectId> = ws.read_set().map(|(o, _)| o).collect();
                for object in objects {
                    self.record_access(object, AccessKind::Read, true);
                }
            }
            self.stats.read_txs_committed += 1;
            ReadOutcome::Committed { value }
        } else {
            self.stats.txs_aborted += 1;
            ReadOutcome::Aborted {
                error: TxError::ReadConflict,
            }
        }
    }

    // ------------------------------------------------------------------
    // Runtime plumbing
    // ------------------------------------------------------------------

    /// Handles a message from another node (or a self-send).
    pub fn handle_message(&mut self, from: NodeId, msg: Message) {
        match msg {
            Message::Ownership(m) => {
                // If we are the current owner and this invalidation will
                // transfer ownership away, stop treating the object as
                // writable *now*: the value we ship in our ACK must remain
                // the latest, so no further local write may slip in between
                // the INV and the VAL. (Pending reliable commits make the
                // engine NACK instead, so nothing already committed is
                // affected.)
                let demote = match &m {
                    zeus_proto::OwnershipMsg::Inv {
                        object,
                        new_replicas,
                        ..
                    } if self.owns(*object)
                        && new_replicas.level_of(self.id) != AccessLevel::Owner
                        && !self.commit.object_has_pending_commit(*object)
                        && !self
                            .store
                            .with(*object, |e| e.has_pending_commits())
                            .unwrap_or(false) =>
                    {
                        Some((*object, new_replicas.level_of(self.id)))
                    }
                    _ => None,
                };
                let host = HostView {
                    store: &self.store,
                    commit: &self.commit,
                };
                let actions = self.ownership.handle_message(from, m, &host);
                if let Some((object, level)) = demote {
                    self.store.with_mut(object, |e| e.level = level);
                }
                self.process_ownership_actions(actions);
            }
            Message::Commit(m) => {
                let actions = self.commit.handle_message(from, m);
                self.process_commit_actions(actions);
            }
            Message::Membership(m) => {
                if let MembershipMsg::Heartbeat { from: alive, .. } = &m {
                    // A heartbeat proves the node is reachable again: drop
                    // any not-yet-committed expulsion intent for it. (Its
                    // lease renewal below stops the suspicion from being
                    // re-asserted.)
                    self.view.retract_expel(*alive);
                }
                let events = self.membership.on_message(m, self.now);
                self.process_membership_events(events);
            }
            Message::View(m) => self.handle_view_message(m),
        }
    }

    /// Handles view-service traffic: directory metadata sync at the node
    /// level, everything else in the view replica.
    fn handle_view_message(&mut self, msg: ViewMsg) {
        match msg {
            ViewMsg::DirPull { from } => {
                let entries = self.ownership.directory_digest();
                if !entries.is_empty() {
                    let push = ViewMsg::DirPush {
                        from: self.id,
                        epoch: self.membership.epoch(),
                        entries,
                    };
                    self.send(from, push);
                }
            }
            ViewMsg::DirPush { epoch, entries, .. } => {
                // Placement adoption is only sound between directory
                // replicas agreeing on the membership epoch: entries blessed
                // under another view may name replicas that view pruned.
                if epoch == self.membership.epoch() && self.config.directory().contains(&self.id) {
                    let actions = self.ownership.adopt_directory(&entries);
                    self.process_ownership_actions(actions);
                }
            }
            other => {
                let mut events = Vec::new();
                self.view.on_message(other, self.now, &mut events);
                self.process_view_events(events);
            }
        }
    }

    /// Reports whether the runtime's inbox had a backlog this iteration.
    /// While congested, [`ZeusNode::tick`] stretches the retransmission
    /// interval (doubling per congested interval, capped at 256x) so
    /// re-sends cannot
    /// amplify the backlog into a congestion collapse. The simulator never
    /// sets this (its delivery is schedule-driven), so sim and chaos
    /// semantics are untouched.
    pub fn set_congested(&mut self, congested: bool) {
        self.congested = congested;
    }

    /// Overrides the base retransmission interval with the transport's
    /// current RTO estimate (`zeus-net`'s per-peer RTT estimators), so the
    /// protocol-level retry horizon tracks what message round trips
    /// actually cost instead of a fixed constant. The congestion stretch of
    /// [`ZeusNode::set_congested`] still multiplies on top. Never calling
    /// this keeps the configured fixed `retransmit_ticks` — the simulator's
    /// deterministic policy.
    pub fn set_retransmit_interval(&mut self, ticks: u64) {
        self.retransmit_override = Some(ticks.max(1));
    }

    /// Advances the node's clock and drives periodic work (heartbeats, lease
    /// expiry, ownership retries).
    pub fn tick(&mut self, now: u64) {
        self.now = now.max(self.now);
        let events = self.membership.tick(self.now);
        self.process_membership_events(events);
        let mut view_events = Vec::new();
        self.view.tick(self.now, &mut view_events);
        self.process_view_events(view_events);
        // Directory anti-entropy (heartbeat cadence): push the local
        // placement digest to the other live directory replicas. Receivers
        // adopt strictly newer entries, so directory replicas that diverged
        // under partitions or replayed arbitration reconverge on the highest
        // ownership timestamp without waiting for the next arbitration.
        let dir_cadence = (self.config.lease_ticks / 4).max(1);
        if self.now.saturating_sub(self.last_dir_push) >= dir_cadence {
            self.last_dir_push = self.now;
            // Delta digest: only entries whose placement settled since the
            // last pushes, so the steady-state sync costs O(churn) rather
            // than O(objects). Full digests flow on demand (DirPull from a
            // rejoiner) and after a view change (mark_all_dirty below).
            let entries = self.ownership.drain_dirty_digest();
            if self.config.directory().contains(&self.id) && !entries.is_empty() {
                for peer in self.config.directory() {
                    if peer != self.id && self.membership.view().live.contains(&peer) {
                        let push = ViewMsg::DirPush {
                            from: self.id,
                            epoch: self.membership.epoch(),
                            entries: entries.clone(),
                        };
                        self.send(peer, push);
                    }
                }
            }
        }
        // Reliable-transport retransmission (§3.1) and retry back-off
        // (§6.2): periodically re-send unacknowledged R-INVs and pending
        // REQs, and re-issue retryably-NACKed requests. The interval is what
        // makes the protocols live across epoch transitions (messages
        // carrying a not-yet-installed epoch are dropped by receivers) while
        // keeping retry traffic bounded.
        if !self.congested {
            self.congestion_stretch = 1;
        }
        let interval = self
            .retransmit_override
            .unwrap_or(self.config.retransmit_ticks)
            .saturating_mul(self.congestion_stretch);
        if self.now.saturating_sub(self.last_retransmit) >= interval {
            self.last_retransmit = self.now;
            if self.congested {
                self.congestion_stretch =
                    (self.congestion_stretch * 2).min(CONGESTED_RETRANSMIT_STRETCH_MAX);
            }
            let retried = !self.retry_queue.is_empty();
            if retried {
                let retries = std::mem::take(&mut self.retry_queue);
                for req in retries {
                    let actions = self.ownership.retry_request(req);
                    self.process_ownership_actions(actions);
                }
            }
            let actions = self.commit.retransmit();
            self.process_commit_actions(actions);
            // Skip the REQ retransmission on intervals where the retry queue
            // just re-issued REQs — sending both would double the ownership
            // traffic for the same requests. Requests not in the retry queue
            // simply go out on the next interval.
            if !retried && self.ownership.pending_requests() > 0 {
                let actions = self.ownership.retransmit();
                self.process_ownership_actions(actions);
            }
            if self.ownership.inflight_arbitrations() > 0 {
                let host = HostView {
                    store: &self.store,
                    commit: &self.commit,
                };
                let actions = self.ownership.replay_stalled(&host);
                self.process_ownership_actions(actions);
            }
        }
        self.tick_policy();
    }

    /// Feeds one transactional access to the locality engine (no-op under
    /// the reactive policy).
    fn record_access(&mut self, object: ObjectId, kind: AccessKind, served_locally: bool) {
        if let Some(engine) = self.locality.as_mut() {
            let level = self
                .store
                .with(object, |e| e.level)
                .unwrap_or(AccessLevel::NonReplica);
            engine.record(object, kind, level, served_locally);
        }
    }

    /// Drives the locality engine: reaps settled policy acquisitions, plans
    /// this interval's placement actions and issues them through the
    /// ordinary acquisition path — off every transaction's critical path.
    fn tick_policy(&mut self) {
        if self.locality.is_none() {
            return;
        }
        // Reap policy requests that reached a terminal state. They have no
        // transaction waiting on them, so their terminal records are dropped
        // here (the sets must not grow with policy traffic); completions
        // feed the new placement back into the tracker.
        if !self.policy_reqs.is_empty() {
            let settled: Vec<(RequestId, ObjectId)> = self
                .policy_reqs
                .iter()
                .filter(|(req, _)| {
                    self.completed_reqs.contains(req) || self.failed_reqs.contains_key(req)
                })
                .map(|(&req, &object)| (req, object))
                .collect();
            for (req, object) in settled {
                self.policy_reqs.remove(&req);
                let completed = self.completed_reqs.remove(&req);
                self.failed_reqs.remove(&req);
                if completed {
                    let level = self.level_of(object);
                    if let Some(engine) = self.locality.as_mut() {
                        engine.note_placement(object, level);
                    }
                }
            }
        }
        // Placement changes only while this node may participate: a fenced
        // or recovering node defers (the engine catches up on elapsed
        // intervals at the next planning round).
        if self.is_fenced() || !self.ownership_enabled() {
            return;
        }
        let store = &self.store;
        let policy_reqs = &self.policy_reqs;
        let self_id = self.id;
        let replication_floor = self.config.replication_degree.max(1);
        let actions = self.locality.as_mut().expect("checked above").tick(
            self.now,
            // The veto: skip actions whose object already has a policy
            // request in flight, or whose placement already moved (a
            // foreground acquisition got there first) — before they cost
            // budget or count as taken.
            |action| {
                let object = action.object();
                if policy_reqs.values().any(|&o| o == object) {
                    return false;
                }
                let level = store
                    .with(object, |e| e.level)
                    .unwrap_or(AccessLevel::NonReplica);
                match action {
                    PlacementAction::PreMigrate(_) => level != AccessLevel::Owner,
                    PlacementAction::Widen(_) => level == AccessLevel::NonReplica,
                    // A cold reader may only retire while the placement
                    // stays at or above the configured replication degree
                    // without it: shrinking below the degree trades the
                    // deployment's fault tolerance for locality (a
                    // single-copy placement loses its history to one
                    // expulsion), and the ownership engine refuses outright
                    // to decide an empty placement.
                    PlacementAction::Shrink(_) => {
                        level == AccessLevel::Reader
                            && store
                                .with(object, |e| {
                                    e.replicas.replicas().filter(|&n| n != self_id).count()
                                        >= replication_floor
                                })
                                .unwrap_or(false)
                    }
                }
            },
        );
        for action in actions {
            let object = action.object();
            let kind = match action {
                PlacementAction::PreMigrate(_) => OwnershipRequestKind::AcquireOwner,
                PlacementAction::Widen(_) => OwnershipRequestKind::AcquireReader,
                PlacementAction::Shrink(_) => {
                    OwnershipRequestKind::RemoveReader { reader: self.id }
                }
            };
            let req = self.acquire(object, kind);
            self.policy_reqs.insert(req, object);
        }
    }

    /// Administratively expels a node from the membership. The ban is
    /// recorded locally (heartbeats from the node no longer re-admit it) and,
    /// if this node is a view replica, an expulsion is proposed to the view
    /// service — the view commits once a majority of replicas grant. The
    /// cluster runtimes route this to every view replica, so any majority of
    /// them being alive is enough (used when a crash is injected, and by the
    /// scale-in experiment of Figure 15).
    pub fn admin_remove_node(&mut self, dead: NodeId) {
        if self.membership.admin_remove(dead) {
            self.view.propose_expel(dead);
        }
    }

    /// Administratively re-admits a node (scale-out, Figure 15): lifts the
    /// local ban and, on view replicas, proposes the admission.
    pub fn admin_add_node(&mut self, node: NodeId) {
        if self.membership.admin_restore(node) {
            self.view.propose_admit(node);
        }
    }

    /// Drains the messages this node wants to send.
    pub fn drain_outbox(&mut self) -> Vec<(NodeId, Message)> {
        std::mem::take(&mut self.outbox)
    }

    /// Whether the node has protocol work in flight (used by the simulator's
    /// quiescence detection).
    pub fn is_quiescent(&self) -> bool {
        self.outbox.is_empty()
            && self.retry_queue.is_empty()
            && self.commit.outstanding_commits() == 0
            && self.ownership.pending_requests() == 0
            && !self.view.has_pending_work()
    }

    fn send(&mut self, to: NodeId, msg: impl Into<Message>) {
        self.outbox.push((to, msg.into()));
    }

    fn broadcast(&mut self, msg: Message) {
        for peer in self.membership.view().live.clone() {
            if peer != self.id {
                self.outbox.push((peer, msg.clone()));
            }
        }
    }

    fn process_ownership_actions(&mut self, actions: Vec<OwnershipAction>) {
        for action in actions {
            match action {
                OwnershipAction::Send { to, msg } => self.send(to, msg),
                OwnershipAction::Completed {
                    req_id,
                    object,
                    o_ts,
                    kind,
                    new_replicas,
                    data,
                } => {
                    self.stats.ownership_completed += 1;
                    if let Some(start) = self.request_started_at.remove(&req_id) {
                        self.ownership_latency
                            .record(self.now.saturating_sub(start).max(1));
                    }
                    self.completed_reqs.insert(req_id);
                    self.acquire_refs.remove(&req_id);
                    self.inflight_acquires.retain(|_, &mut r| r != req_id);
                    self.apply_acquisition(object, kind, o_ts, new_replicas, data);
                }
                OwnershipAction::Failed {
                    req_id,
                    object: _,
                    reason,
                } => {
                    self.request_started_at.remove(&req_id);
                    self.acquire_refs.remove(&req_id);
                    self.inflight_acquires.retain(|_, &mut r| r != req_id);
                    self.failed_reqs.insert(req_id, reason);
                }
                OwnershipAction::RetryLater { req_id, .. } => {
                    // Dedup: a request can be NACKed retryably several times
                    // per interval (original send plus retransmissions), and
                    // duplicate entries would multiply the retry traffic.
                    if !self.retry_queue.contains(&req_id) {
                        self.retry_queue.push(req_id);
                    }
                }
                OwnershipAction::DemoteSelf { object, level } => {
                    // The ownership we are driving away must stop being
                    // locally writable right now; the VAL installs the full
                    // placement later.
                    self.store.with_mut(object, |e| e.level = level);
                }
                OwnershipAction::ApplyReplicaChange {
                    object,
                    o_ts,
                    new_replicas,
                } => {
                    self.apply_replica_change(object, o_ts, new_replicas);
                }
            }
        }
    }

    /// Installs the outcome of a completed acquisition in the local store.
    ///
    /// Shipped data installs by ts-compare only (regression refusal): a copy
    /// that is not strictly newer than what this node already stores never
    /// overwrites it, so a stale arbiter's ship cannot roll the object back.
    /// The winning ownership timestamp is recorded as the owner's tenure —
    /// subsequent local writes stamp it into their [`DataTs`].
    fn apply_acquisition(
        &mut self,
        object: ObjectId,
        kind: OwnershipRequestKind,
        o_ts: zeus_proto::OwnershipTs,
        new_replicas: ReplicaSet,
        data: Option<(DataTs, Bytes)>,
    ) {
        let level = new_replicas.level_of(self.id);
        if !level.is_replica() {
            // This node is not in the decided placement — it drove its own
            // removal (a policy shrink, `RemoveReader { reader: self }`).
            // Drop the local replica exactly as a witnessed removal would;
            // keeping the entry at its old level would leave a ghost reader
            // the commit protocol no longer invalidates.
            self.store.remove(object);
            return;
        }
        let updated = self
            .store
            .with_mut(object, |e| {
                e.level = level;
                e.replicas = new_replicas.clone();
                e.o_ts = o_ts;
                if let Some((ts, bytes)) = &data {
                    if *ts > e.ts {
                        e.ts = *ts;
                        e.data = bytes.clone();
                        e.t_state = TState::Valid;
                    }
                }
            })
            .is_some();
        if !updated {
            let (ts, bytes) = data.unwrap_or((DataTs::ZERO, Bytes::new()));
            let mut entry = ObjectEntry::new(bytes, level, new_replicas);
            entry.ts = ts;
            entry.o_ts = o_ts;
            self.store.insert(object, entry);
        }
        let _ = kind;
    }

    /// Applies an ownership change this node witnessed as an arbiter or old
    /// owner (demotion to reader, reader removal, etc.).
    fn apply_replica_change(
        &mut self,
        object: ObjectId,
        o_ts: zeus_proto::OwnershipTs,
        new_replicas: ReplicaSet,
    ) {
        let level = new_replicas.level_of(self.id);
        if level == AccessLevel::NonReplica {
            self.store.remove(object);
        } else {
            self.store.with_mut(object, |e| {
                e.level = level;
                e.replicas = new_replicas.clone();
                e.o_ts = o_ts;
            });
        }
    }

    fn process_commit_actions(&mut self, actions: Vec<CommitAction>) {
        for action in actions {
            match action {
                CommitAction::Send { to, msg } => self.send(to, msg),
                CommitAction::ReliablyCommitted { tx_id: _, objects } => {
                    for (object, ts) in objects {
                        self.store.with_mut(object, |e| e.validate_at(ts));
                    }
                }
                CommitAction::ApplyUpdates { tx_id: _, updates } => {
                    for update in updates {
                        self.store.with_mut_or_insert(
                            update.object,
                            || {
                                ObjectEntry::new(
                                    Bytes::new(),
                                    AccessLevel::Reader,
                                    ReplicaSet::default(),
                                )
                            },
                            |e| {
                                e.apply_follower_update(update.ts, update.data.clone());
                            },
                        );
                    }
                }
                CommitAction::ValidateUpdates { tx_id: _, objects } => {
                    for (object, ts) in objects {
                        self.store.with_mut(object, |e| {
                            if e.ts == ts && e.t_state == TState::Invalid {
                                e.t_state = TState::Valid;
                            }
                        });
                    }
                }
                CommitAction::RecoveryFinished { epoch: _ } => {
                    let events = self.membership.local_recovery_done();
                    self.process_membership_events(events);
                }
            }
        }
    }

    fn process_membership_events(&mut self, events: Vec<MembershipEvent>) {
        for event in events {
            match event {
                MembershipEvent::Broadcast(msg) => self.broadcast(Message::Membership(msg)),
                MembershipEvent::Send { to, msg } => self.send(to, Message::Membership(msg)),
                MembershipEvent::SuspectsExpired(dead) => {
                    // The failure detector keeps re-asserting expired leases
                    // every tick, so a proposal lost to a view-replica crash
                    // or race is simply re-proposed. Inert on nodes outside
                    // the view-replica set — their local suspicion carries no
                    // vote; the view replicas run the same detector.
                    for d in dead {
                        self.view.propose_expel(d);
                    }
                }
                MembershipEvent::RejoinRequested(node) => {
                    self.view.propose_admit(node);
                }
                MembershipEvent::ViewInstalled { view, rejoined } => {
                    // Keep the view replica's committed state in step with
                    // disseminated views (followers learn commits through the
                    // membership ViewChange broadcast, not the agreement).
                    let admissions = self.membership.admissions();
                    self.view
                        .observe_committed(view.epoch, &view.live, &admissions);
                    // If *we* are among the re-admitted nodes, the cluster
                    // kept committing while we were out: every replica,
                    // ownership and commit structure we hold may be stale.
                    // Discard them before processing the view change, so we
                    // re-enter as a clean node and re-acquire data through
                    // the ownership protocol instead of serving stale state.
                    if rejoined.contains(&self.id) {
                        self.reset_for_rejoin();
                    }
                    // Prune the replica placements cached on store entries:
                    // dead nodes lost their copies and re-admitted nodes
                    // were wiped, so keeping them in an entry's reader list
                    // would keep streaming R-INVs to nodes outside the real
                    // placement — zombie followers that re-install data
                    // (and later serve or fork it) without being replicas.
                    for object in self.store.object_ids() {
                        self.store.with_mut(object, |e| {
                            e.replicas.retain_live(&view.live);
                            for &r in &rejoined {
                                e.replicas.remove_node(r);
                            }
                        });
                    }
                    let host = HostView {
                        store: &self.store,
                        commit: &self.commit,
                    };
                    let actions = self.ownership.on_view_change(
                        view.epoch,
                        view.live.clone(),
                        &rejoined,
                        &host,
                    );
                    self.process_ownership_actions(actions);
                    let actions =
                        self.commit
                            .on_view_change(view.epoch, view.live.clone(), &rejoined);
                    self.process_commit_actions(actions);
                    // Directory replicas may have diverged arbitrarily while
                    // the membership was in flux (partitions precede most
                    // view changes): schedule one full anti-entropy push so
                    // peers reconverge without waiting for per-object
                    // arbitration traffic.
                    if self.config.directory().contains(&self.id) {
                        self.ownership.mark_all_dirty();
                    }
                    // A re-admitted directory replica starts from amnesia:
                    // pull the committed placement metadata from its peers
                    // before arbitrating, so it cannot re-grant ownership the
                    // cluster already moved elsewhere while it was out.
                    if rejoined.contains(&self.id) && self.config.directory().contains(&self.id) {
                        for peer in self.config.directory() {
                            if peer != self.id && view.live.contains(&peer) {
                                self.send(peer, ViewMsg::DirPull { from: self.id });
                            }
                        }
                    }
                }
                MembershipEvent::RecoveryComplete(_epoch) => {
                    self.ownership.set_enabled(true);
                }
            }
        }
    }

    fn process_view_events(&mut self, events: Vec<ViewEvent>) {
        for event in events {
            match event {
                ViewEvent::Send { to, msg } => self.send(to, msg),
                ViewEvent::Committed {
                    epoch,
                    live,
                    admitted,
                } => {
                    let events = self
                        .membership
                        .install_committed(epoch, live, admitted, self.now);
                    self.process_membership_events(events);
                }
                ViewEvent::NeedsSync { to } => {
                    self.send(to, MembershipMsg::ViewPull { from: self.id });
                }
            }
        }
    }

    /// Discards all replica state after this node was expelled and
    /// re-admitted (see [`MembershipEvent::ViewInstalled`]).
    fn reset_for_rejoin(&mut self) {
        self.stats.rejoin_resets += 1;
        self.store.clear();
        self.commit.reset_for_rejoin();
        self.retry_queue.clear();
        self.inflight_acquires.clear();
        self.acquire_refs.clear();
        let actions = self.ownership.reset_for_rejoin();
        self.process_ownership_actions(actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_node() -> ZeusNode {
        let mut config = ZeusConfig::with_nodes(1);
        config.replication_degree = 1;
        ZeusNode::new(NodeId(0), config)
    }

    #[test]
    fn single_node_write_and_read_roundtrip() {
        let mut node = single_node();
        let object = ObjectId(1);
        node.create_object(
            object,
            Bytes::from_static(b"0"),
            ReplicaSet::new(NodeId(0), []),
        );

        let outcome = node.execute_write(0, |tx| {
            tx.write(object, Bytes::from_static(b"42"))?;
            Ok(())
        });
        assert!(outcome.is_committed());

        let read = node.execute_read(|tx| tx.read(object));
        assert_eq!(read.unwrap_committed(), Bytes::from_static(b"42"));
        assert_eq!(node.stats().write_txs_committed, 1);
        assert_eq!(node.stats().read_txs_committed, 1);
    }

    #[test]
    fn write_to_unowned_object_returns_ownership_pending() {
        let mut config = ZeusConfig::with_nodes(3);
        config.replication_degree = 2;
        let mut node = ZeusNode::new(NodeId(2), config.clone());
        // Object owned by node 0; node 2 is a non-replica.
        node.create_object(
            ObjectId(5),
            Bytes::new(),
            config.default_replicas(NodeId(0)),
        );
        let outcome = node.execute_write(0, |tx| tx.write(ObjectId(5), Bytes::from_static(b"x")));
        match outcome {
            WriteOutcome::OwnershipPending { requests } => {
                assert_eq!(requests.len(), 1);
                assert_eq!(node.request_state(requests[0]), RequestState::Pending);
            }
            other => panic!("expected OwnershipPending, got {other:?}"),
        }
        // The REQ must be in the outbox, addressed to a directory node.
        let out = node.drain_outbox();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Message::Ownership(_)));
    }

    #[test]
    fn opacity_validation_catches_concurrent_version_change() {
        let mut node = single_node();
        let object = ObjectId(1);
        node.create_object(
            object,
            Bytes::from_static(b"a"),
            ReplicaSet::new(NodeId(0), []),
        );
        let outcome = node.execute_write(0, |tx| {
            let v = tx.read(object)?;
            // Simulate a concurrent local transaction sneaking in between
            // read and commit by bumping the version behind the API's back.
            Ok(v)
        });
        assert!(outcome.is_committed());

        // Now do it with an actual conflict injected via the store.
        let outcome = {
            let store_version_bump = |node: &mut ZeusNode| {
                node.store
                    .with_mut(object, |e| e.apply_local_write(Bytes::from_static(b"z")))
                    .unwrap();
            };
            let mut first_read = None;
            let o = node.execute_write(0, |tx| {
                first_read = Some(tx.read(object)?);
                Ok(())
            });
            // The closure committed before we can interleave here, so assert
            // the normal path worked and then force a validation failure
            // directly.
            assert!(o.is_committed());
            store_version_bump(&mut node);
            node.execute_write(0, |tx| {
                // Read set recorded at the old version...
                let _ = tx.read(object)?;
                Ok(())
            })
        };
        // ...but the store did not change between read and commit inside the
        // same call, so this still commits. Opacity violations can only occur
        // across worker threads, which the lock manager prevents; assert the
        // commit path remains consistent.
        assert!(outcome.is_committed());
    }

    #[test]
    fn user_abort_counts_as_aborted() {
        let mut node = single_node();
        node.create_object(ObjectId(1), Bytes::new(), ReplicaSet::new(NodeId(0), []));
        let outcome: WriteOutcome<()> = node.execute_write(0, |tx| tx.abort());
        assert!(matches!(
            outcome,
            WriteOutcome::Aborted {
                error: TxError::UserAbort
            }
        ));
        assert_eq!(node.stats().txs_aborted, 1);
    }

    #[test]
    fn read_only_transaction_aborts_on_invalidated_replica() {
        let mut config = ZeusConfig::with_nodes(2);
        config.replication_degree = 2;
        let mut node = ZeusNode::new(NodeId(1), config);
        let object = ObjectId(3);
        node.create_object(
            object,
            Bytes::from_static(b"v"),
            ReplicaSet::new(NodeId(0), [NodeId(1)]),
        );
        // An R-INV arrives for the object (reader side) and invalidates it.
        node.handle_message(
            NodeId(0),
            Message::Commit(zeus_proto::CommitMsg::RInv {
                tx_id: zeus_proto::TxId::new(zeus_proto::PipelineId::new(NodeId(0), 0), 0),
                epoch: Epoch::ZERO,
                followers: vec![NodeId(1)],
                prev_val: true,
                updates: vec![ObjectUpdate::new(
                    object,
                    DataTs::new(1, Default::default()),
                    Bytes::from_static(b"new"),
                )],
            }),
        );
        let outcome = node.execute_read(|tx| tx.read(object));
        assert!(matches!(
            outcome,
            ReadOutcome::Aborted {
                error: TxError::ReadConflict
            }
        ));
        // After the R-VAL the new value becomes readable.
        node.handle_message(
            NodeId(0),
            Message::Commit(zeus_proto::CommitMsg::RVal {
                tx_id: zeus_proto::TxId::new(zeus_proto::PipelineId::new(NodeId(0), 0), 0),
                epoch: Epoch::ZERO,
            }),
        );
        let outcome = node.execute_read(|tx| tx.read(object));
        assert_eq!(outcome.unwrap_committed(), Bytes::from_static(b"new"));
    }

    #[test]
    fn predictive_policy_widens_after_remote_read_misses() {
        let mut config = ZeusConfig::with_nodes(3);
        config.policy = PolicyKind::Predictive;
        config.policy_interval_ticks = 100;
        let mut node = ZeusNode::new(NodeId(2), config);
        // Replicated on nodes 0 and 1 only; node 2 keeps failing to read it
        // locally (strictly-local reads, §5.3).
        node.create_object(
            ObjectId(7),
            Bytes::from_static(b"v"),
            ReplicaSet::new(NodeId(0), [NodeId(1)]),
        );
        for _ in 0..8 {
            let out = node.execute_read(|tx| tx.read(ObjectId(7)));
            assert!(!out.is_committed());
        }
        node.tick(100);
        assert_eq!(node.policy_stats().widens, 1);
        assert_eq!(node.policy_stats().premigrations, 0);
        // The widen left as an ordinary ownership REQ, off the read path.
        let ownership_msgs = node
            .drain_outbox()
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::Ownership(_)))
            .count();
        assert!(ownership_msgs >= 1, "AcquireReader must be on the wire");
        // One in-flight policy request per object: the next interval plans
        // the same widen but does not issue a duplicate.
        node.tick(200);
        assert_eq!(node.policy_stats().widens, 1);
    }

    #[test]
    fn reactive_policy_tracks_and_issues_nothing() {
        let mut node = single_node();
        node.create_object(ObjectId(1), Bytes::new(), ReplicaSet::new(NodeId(0), []));
        for t in 0..5u64 {
            let _ = node.execute_write(0, |tx| tx.write(ObjectId(1), Bytes::from_static(b"x")));
            node.tick(t * 10_000);
        }
        assert_eq!(node.policy_stats(), PolicyStats::default());
    }

    #[test]
    fn pipelined_writes_do_not_block_on_replication() {
        let mut config = ZeusConfig::with_nodes(2);
        config.replication_degree = 2;
        let mut node = ZeusNode::new(NodeId(0), config);
        let object = ObjectId(9);
        node.create_object(
            object,
            Bytes::from_static(b"0"),
            ReplicaSet::new(NodeId(0), [NodeId(1)]),
        );
        for i in 0..5u8 {
            let outcome = node.execute_write(0, |tx| tx.write(object, vec![i]));
            assert!(outcome.is_committed(), "commit {i} must not wait for acks");
        }
        assert_eq!(node.outstanding_commits(), 5, "all five are pipelined");
        // Five R-INVs (one per write) are queued for the follower.
        let rinvs = node
            .drain_outbox()
            .into_iter()
            .filter(|(_, m)| m.kind() == "r-inv")
            .count();
        assert_eq!(rinvs, 5);
    }
}
