//! Transaction API: contexts, outcomes and errors.
//!
//! The surface mirrors the paper's transactional-memory API (§7): a
//! transaction is arbitrary code that opens objects for reading or writing
//! through a [`TxCtx`]; Zeus verifies the required access level on each open
//! and acquires ownership on demand. Write transactions enjoy *opacity*
//! (§6.2): every read is validated against the versions observed, even if the
//! transaction ultimately aborts.

use bytes::Bytes;
use zeus_proto::messages::NackReason;
use zeus_proto::{ObjectId, OwnershipRequestKind, RequestId, TxId};
use zeus_store::{Store, TxWorkspace};

/// Why a transaction could not commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// The node lacks the access level needed for `object`; ownership is
    /// being (or must be) acquired. Write transactions surface this through
    /// [`WriteOutcome::OwnershipPending`] rather than an abort.
    NeedsOwnership {
        /// The object that must be acquired.
        object: ObjectId,
        /// The level to acquire.
        kind: OwnershipRequestKind,
    },
    /// A read-only transaction touched an object this node does not
    /// replicate; route it to a replica instead (§5.3).
    NotReplicated {
        /// The missing object.
        object: ObjectId,
    },
    /// A read-only transaction hit an invalidated object or a version change
    /// (a conflicting reliable commit is in flight); retry locally.
    ReadConflict,
    /// Opacity validation failed at local commit (a concurrent local
    /// transaction or incoming migration changed a read object).
    ValidationFailed,
    /// Another worker thread of the same node holds the local lock of an
    /// object in the write set (§7 multi-threaded local commit).
    LockConflict,
    /// A read-only transaction attempted a write.
    WriteInReadOnly,
    /// The application aborted the transaction.
    UserAbort,
    /// An ownership acquisition failed terminally.
    OwnershipFailed {
        /// The object whose acquisition failed.
        object: ObjectId,
        /// The protocol-level reason.
        reason: NackReason,
    },
    /// The transaction exhausted its ownership-retry budget (back-off
    /// deadlock avoidance, §6.2).
    RetriesExhausted,
    /// The node fenced itself: it is isolated from every peer of its view
    /// (or was removed from the view) and must not serve transactions, since
    /// the rest of the cluster may have expelled it and moved on (the
    /// node-side lease contract, §3.1). Route the request to another node
    /// and retry once the node is re-admitted.
    Fenced,
    /// An ownership acquisition decided without any surviving data-bearing
    /// arbiter, and the placement proves the object is not a genuine first
    /// touch: its committed history is (currently) unreachable. The
    /// transaction aborts instead of fabricating an empty version-0 object;
    /// a retry re-fetches the value from the surviving readers named in the
    /// placement once they answer.
    DataLoss,
    /// The node could not be reached at all: its command channel is closed
    /// (the node thread exited or the cluster shut down). Unlike
    /// [`TxError::RetriesExhausted`] this is not a protocol outcome — the
    /// transaction was never handed to the node. Route the request to
    /// another node.
    NodeUnavailable,
}

impl TxError {
    /// Whether a transaction aborted with this error may be retried with a
    /// fresh execution — the classification a
    /// [`crate::client::RetryPolicy`] applies.
    ///
    /// Retryable: transient local conflicts ([`TxError::LockConflict`],
    /// [`TxError::ValidationFailed`], [`TxError::ReadConflict`]) and
    /// transient ownership-protocol rejections (lost arbitration, pending
    /// commit, in-progress recovery — the paper's §6.2 back-off cases).
    /// Everything else is terminal for the issuing session: application
    /// aborts, fencing, missing replicas, data loss, exhausted budgets and
    /// unreachable nodes.
    pub fn is_retryable(&self) -> bool {
        use zeus_proto::messages::NackReason;
        match self {
            TxError::LockConflict | TxError::ValidationFailed | TxError::ReadConflict => true,
            TxError::OwnershipFailed { reason, .. } => matches!(
                reason,
                NackReason::LostArbitration | NackReason::PendingCommit | NackReason::Recovering
            ),
            // `NeedsOwnership` is not an abort: the runtimes park the
            // transaction until the acquisition completes.
            TxError::NeedsOwnership { .. } => false,
            TxError::NotReplicated { .. }
            | TxError::WriteInReadOnly
            | TxError::UserAbort
            | TxError::RetriesExhausted
            | TxError::Fenced
            | TxError::DataLoss
            | TxError::NodeUnavailable => false,
        }
    }
}

/// Outcome of a write-transaction execution attempt on a node.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOutcome<R> {
    /// The transaction committed locally; its reliable commit is pipelined.
    Committed {
        /// The transaction id assigned by the commit pipeline.
        tx_id: TxId,
        /// The value returned by the transaction closure.
        value: R,
    },
    /// The transaction touched objects this node does not hold at the
    /// required level. Ownership requests were issued; re-execute the
    /// transaction once they complete (the application thread blocks here in
    /// the paper, §3.2).
    OwnershipPending {
        /// The outstanding ownership requests.
        requests: Vec<RequestId>,
    },
    /// The transaction aborted.
    Aborted {
        /// Why it aborted.
        error: TxError,
    },
}

impl<R> WriteOutcome<R> {
    /// Returns the committed value, panicking otherwise (test helper).
    pub fn unwrap_committed(self) -> R {
        match self {
            WriteOutcome::Committed { value, .. } => value,
            other => panic!("expected Committed, got {:?}", discriminant_name(&other)),
        }
    }

    /// Whether the outcome is `Committed`.
    pub fn is_committed(&self) -> bool {
        matches!(self, WriteOutcome::Committed { .. })
    }
}

fn discriminant_name<R>(o: &WriteOutcome<R>) -> &'static str {
    match o {
        WriteOutcome::Committed { .. } => "Committed",
        WriteOutcome::OwnershipPending { .. } => "OwnershipPending",
        WriteOutcome::Aborted { .. } => "Aborted",
    }
}

/// Outcome of a read-only transaction (§5.3): it either commits after its
/// local validation or aborts (no network traffic either way).
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome<R> {
    /// The transaction observed a consistent, reliably committed snapshot.
    Committed {
        /// The value returned by the transaction closure.
        value: R,
    },
    /// The transaction aborted (conflict or missing replica).
    Aborted {
        /// Why it aborted.
        error: TxError,
    },
}

impl<R> ReadOutcome<R> {
    /// Returns the committed value, panicking otherwise (test helper).
    pub fn unwrap_committed(self) -> R {
        match self {
            ReadOutcome::Committed { value } => value,
            ReadOutcome::Aborted { error } => panic!("read-only tx aborted: {error:?}"),
        }
    }

    /// Whether the outcome is `Committed`.
    pub fn is_committed(&self) -> bool {
        matches!(self, ReadOutcome::Committed { .. })
    }
}

/// Execution context handed to transaction closures.
///
/// The context records the read and write sets, serves reads from the
/// transaction's private copies (write-your-own-read), and accumulates the
/// access levels that are missing so the node can acquire them.
#[derive(Debug)]
pub struct TxCtx<'a> {
    store: &'a Store,
    read_only: bool,
    ws: TxWorkspace,
    missing: Vec<(ObjectId, OwnershipRequestKind)>,
}

impl<'a> TxCtx<'a> {
    /// Creates a context for a write transaction.
    pub(crate) fn write_tx(store: &'a Store) -> Self {
        TxCtx {
            store,
            read_only: false,
            ws: TxWorkspace::new(),
            missing: Vec::new(),
        }
    }

    /// Creates a context for a read-only transaction.
    pub(crate) fn read_tx(store: &'a Store) -> Self {
        TxCtx {
            store,
            read_only: true,
            ws: TxWorkspace::new(),
            missing: Vec::new(),
        }
    }

    /// Opens `object` for reading and returns its data
    /// (`tr_open_read`, §7).
    pub fn read(&mut self, object: ObjectId) -> Result<Bytes, TxError> {
        if let Some(private) = self.ws.written(object) {
            return Ok(private.clone());
        }
        match self.store.get(object) {
            Some(entry) if entry.level.can_read() => {
                if self.read_only && !entry.t_state.readable() {
                    // A reliable commit is in flight: the replica may return
                    // neither the old nor the new value (§5.3).
                    return Err(TxError::ReadConflict);
                }
                self.ws.record_read(object, entry.ts);
                Ok(entry.data)
            }
            Some(_) | None if self.read_only => Err(TxError::NotReplicated { object }),
            _ => {
                let kind = OwnershipRequestKind::AcquireReader;
                self.missing.push((object, kind));
                Err(TxError::NeedsOwnership { object, kind })
            }
        }
    }

    /// Opens `object` for writing and installs `data` as its new value in the
    /// transaction's private copy (`tr_open_write`, §7).
    pub fn write(&mut self, object: ObjectId, data: impl Into<Bytes>) -> Result<(), TxError> {
        if self.read_only {
            return Err(TxError::WriteInReadOnly);
        }
        match self.store.get(object) {
            Some(entry) if entry.level.can_write() => {
                self.ws.record_read(object, entry.ts);
                self.ws.record_write(object, data.into());
                Ok(())
            }
            _ => {
                let kind = OwnershipRequestKind::AcquireOwner;
                self.missing.push((object, kind));
                Err(TxError::NeedsOwnership { object, kind })
            }
        }
    }

    /// Reads `object`, applies `f` to its value and writes the result back —
    /// the common read-modify-write shape of the OLTP benchmarks.
    pub fn update(
        &mut self,
        object: ObjectId,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(), TxError> {
        // A write will be needed: make sure we have (or request) write access
        // before reading, so a single ownership round-trip suffices.
        if !self.read_only {
            match self.store.get(object) {
                Some(entry) if entry.level.can_write() => {}
                _ => {
                    let kind = OwnershipRequestKind::AcquireOwner;
                    self.missing.push((object, kind));
                    return Err(TxError::NeedsOwnership { object, kind });
                }
            }
        }
        let current = self.read(object)?;
        let new = f(&current);
        self.write(object, new)
    }

    /// Marks the transaction as aborted by the application.
    pub fn abort<T>(&self) -> Result<T, TxError> {
        Err(TxError::UserAbort)
    }

    /// Number of objects read so far.
    pub fn reads(&self) -> usize {
        self.ws.read_count()
    }

    /// Number of objects written so far.
    pub fn writes(&self) -> usize {
        self.ws.write_count()
    }

    /// Consumes the context, returning the workspace and the missing access
    /// levels (deduplicated, strongest level wins).
    pub(crate) fn into_parts(self) -> (TxWorkspace, Vec<(ObjectId, OwnershipRequestKind)>) {
        let mut missing: Vec<(ObjectId, OwnershipRequestKind)> = Vec::new();
        for (object, kind) in self.missing {
            if let Some(existing) = missing.iter_mut().find(|(o, _)| *o == object) {
                if kind == OwnershipRequestKind::AcquireOwner {
                    existing.1 = OwnershipRequestKind::AcquireOwner;
                }
            } else {
                missing.push((object, kind));
            }
        }
        (self.ws, missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_proto::{AccessLevel, NodeId, ReplicaSet};

    fn store_with(level: AccessLevel) -> Store {
        let store = Store::new(4);
        store.create(
            ObjectId(1),
            Bytes::from_static(b"v1"),
            level,
            ReplicaSet::new(NodeId(0), [NodeId(1)]),
        );
        store
    }

    #[test]
    fn write_tx_reads_and_writes_owned_object() {
        let store = store_with(AccessLevel::Owner);
        let mut ctx = TxCtx::write_tx(&store);
        assert_eq!(ctx.read(ObjectId(1)).unwrap(), Bytes::from_static(b"v1"));
        ctx.write(ObjectId(1), Bytes::from_static(b"v2")).unwrap();
        assert_eq!(ctx.read(ObjectId(1)).unwrap(), Bytes::from_static(b"v2"));
        let (ws, missing) = ctx.into_parts();
        assert!(missing.is_empty());
        assert_eq!(ws.write_count(), 1);
    }

    #[test]
    fn write_to_reader_object_requests_ownership() {
        let store = store_with(AccessLevel::Reader);
        let mut ctx = TxCtx::write_tx(&store);
        let err = ctx.write(ObjectId(1), Bytes::new()).unwrap_err();
        assert!(matches!(err, TxError::NeedsOwnership { .. }));
        let (_, missing) = ctx.into_parts();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].1, OwnershipRequestKind::AcquireOwner);
    }

    #[test]
    fn read_of_unknown_object_requests_reader_level() {
        let store = Store::new(4);
        let mut ctx = TxCtx::write_tx(&store);
        assert!(ctx.read(ObjectId(9)).is_err());
        let (_, missing) = ctx.into_parts();
        assert_eq!(missing[0].1, OwnershipRequestKind::AcquireReader);
    }

    #[test]
    fn missing_levels_deduplicate_to_strongest() {
        let store = Store::new(4);
        let mut ctx = TxCtx::write_tx(&store);
        let _ = ctx.read(ObjectId(5));
        let _ = ctx.write(ObjectId(5), Bytes::new());
        let (_, missing) = ctx.into_parts();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].1, OwnershipRequestKind::AcquireOwner);
    }

    #[test]
    fn read_only_tx_rejects_writes_and_missing_replicas() {
        let store = store_with(AccessLevel::Reader);
        let mut ctx = TxCtx::read_tx(&store);
        assert_eq!(ctx.read(ObjectId(1)).unwrap(), Bytes::from_static(b"v1"));
        assert_eq!(
            ctx.write(ObjectId(1), Bytes::new()).unwrap_err(),
            TxError::WriteInReadOnly
        );
        assert!(matches!(
            ctx.read(ObjectId(99)).unwrap_err(),
            TxError::NotReplicated { .. }
        ));
    }

    #[test]
    fn read_only_tx_aborts_on_invalidated_object() {
        let store = store_with(AccessLevel::Reader);
        store
            .with_mut(ObjectId(1), |e| {
                e.apply_follower_update(
                    zeus_proto::DataTs::new(5, Default::default()),
                    Bytes::from_static(b"new"),
                );
            })
            .unwrap();
        let mut ctx = TxCtx::read_tx(&store);
        assert_eq!(ctx.read(ObjectId(1)).unwrap_err(), TxError::ReadConflict);
    }

    #[test]
    fn update_helper_does_read_modify_write() {
        let store = store_with(AccessLevel::Owner);
        let mut ctx = TxCtx::write_tx(&store);
        ctx.update(ObjectId(1), |old| {
            let mut v = old.to_vec();
            v.push(b'!');
            v
        })
        .unwrap();
        assert_eq!(ctx.read(ObjectId(1)).unwrap(), Bytes::from_static(b"v1!"));
    }

    #[test]
    fn unwrap_helpers_behave() {
        let ok: WriteOutcome<u32> = WriteOutcome::Committed {
            tx_id: Default::default(),
            value: 7,
        };
        assert!(ok.is_committed());
        assert_eq!(ok.unwrap_committed(), 7);
        let ro: ReadOutcome<u32> = ReadOutcome::Committed { value: 9 };
        assert!(ro.is_committed());
        assert_eq!(ro.unwrap_committed(), 9);
    }
}
