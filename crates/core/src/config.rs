//! Cluster configuration.

use zeus_proto::{NodeId, PolicyKind};

/// Configuration of a Zeus deployment.
#[derive(Debug, Clone)]
pub struct ZeusConfig {
    /// Number of nodes in the deployment (the paper evaluates 3 and 6).
    pub nodes: usize,
    /// Number of directory replicas holding ownership metadata (the paper
    /// uses 3 regardless of deployment size, §4).
    pub directory_replicas: usize,
    /// Number of replicas of the view service (`zeus-view`) agreeing on
    /// membership epochs by majority quorum — the embedded stand-in for the
    /// paper's external ZooKeeper-backed membership service. Three by
    /// default (clamped to the deployment size): membership keeps moving as
    /// long as any two of the first three nodes are alive.
    pub view_replicas: usize,
    /// Default replication degree of objects (owner + readers). The paper's
    /// evaluation uses 3-way replication (§8).
    pub replication_degree: usize,
    /// Number of store shards per node.
    pub store_shards: usize,
    /// Worker threads per node in the threaded runtime (each worker owns a
    /// commit pipeline, §5.2/§7).
    pub worker_threads: usize,
    /// Lease duration (in ticks) for the membership failure detector.
    pub lease_ticks: u64,
    /// Maximum times a transaction retries ownership acquisition before
    /// aborting with back-off (§6.2 deadlock avoidance).
    pub max_ownership_retries: usize,
    /// Ticks between retransmissions of unacknowledged protocol messages
    /// (the paper's reliable transport, §3.1). Protocol handlers are
    /// idempotent, so the interval trades recovery latency for traffic.
    pub retransmit_ticks: u64,
    /// Whether a heartbeat from a falsely-suspected (lease-expelled) node
    /// re-admits it through a view change. Always true in production
    /// configurations; the chaos harness flips it to false to re-create the
    /// pre-fix expulsion wedge and prove the explorer catches it.
    pub readmit_suspects: bool,
    /// Whether the threaded node loop executes its drained command batch as
    /// one unit (writes back-to-back into the commit pipeline, coalesced
    /// ownership acquisitions, one outbox flush per batch). Disabled, the
    /// loop processes one command per iteration with per-message sends —
    /// the `--no-batch` control of the saturation benchmarks. The simulator
    /// executes sessions synchronously, so it always behaves like batches
    /// of one regardless of this flag.
    pub batch_commands: bool,
    /// Placement policy run by each node's locality engine. `Reactive` (the
    /// default) is the null policy — placements only ever move on the
    /// critical path of an access, byte-identical to the pre-engine
    /// behavior. `Predictive` tracks per-object access patterns and
    /// pre-provisions replicas (migrate ownership toward the trending
    /// writer, widen replication for read-hot objects, shrink cold ones)
    /// off the critical path.
    pub policy: PolicyKind,
    /// Ticks between locality-policy planning rounds (also the tracker's
    /// EWMA decay interval). 1 tick = 1 us in the threaded runtimes.
    pub policy_interval_ticks: u64,
    /// Placement actions each node may issue per policy interval (token
    /// bucket with 2x burst); surplus candidates are deferred.
    pub policy_budget: u32,
}

impl Default for ZeusConfig {
    fn default() -> Self {
        ZeusConfig {
            nodes: 3,
            directory_replicas: 3,
            view_replicas: 3,
            replication_degree: 3,
            store_shards: 64,
            worker_threads: 1,
            // 1 tick = 1 us in the threaded runtime. The failure detector
            // must tolerate OS scheduling hiccups on loaded machines: with a
            // 10 ms lease a busy node loop missed the window and got falsely
            // expelled (the heartbeat re-admission path heals that, but each
            // false view change still pauses ownership for a recovery
            // round-trip). 200 ms lease + equal grace keeps detection fast
            // enough for the fault-injection tests while staying far above
            // scheduler noise.
            lease_ticks: 200_000,
            max_ownership_retries: 256,
            retransmit_ticks: 64,
            readmit_suspects: true,
            batch_commands: true,
            policy: PolicyKind::Reactive,
            // ~10 ms between planning rounds: long enough to smooth over
            // scheduling noise, short enough to track a migrating hotspot.
            policy_interval_ticks: 10_000,
            policy_budget: 8,
        }
    }
}

impl ZeusConfig {
    /// A configuration with `nodes` nodes and the paper's defaults otherwise.
    pub fn with_nodes(nodes: usize) -> Self {
        ZeusConfig {
            nodes,
            directory_replicas: 3.min(nodes),
            view_replicas: 3.min(nodes),
            replication_degree: 3.min(nodes),
            ..Default::default()
        }
    }

    /// Sets the replication degree (clamped to the deployment size).
    #[must_use]
    pub fn replication(mut self, degree: usize) -> Self {
        self.replication_degree = degree.clamp(1, self.nodes);
        self
    }

    /// Sets the number of worker threads per node.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.worker_threads = workers.max(1);
        self
    }

    /// Sets the placement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The directory replica set: the first `directory_replicas` nodes.
    pub fn directory(&self) -> Vec<NodeId> {
        (0..self.directory_replicas.min(self.nodes) as u16)
            .map(NodeId)
            .collect()
    }

    /// The view-replica set: the first `view_replicas` nodes. Static for
    /// the deployment's lifetime — view replicas keep participating in the
    /// agreement even while expelled from the data-plane view.
    pub fn view_replica_set(&self) -> Vec<NodeId> {
        (0..self.view_replicas.clamp(1, self.nodes) as u16)
            .map(NodeId)
            .collect()
    }

    /// All node ids of the deployment.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes as u16).map(NodeId).collect()
    }

    /// The default replica set for a fresh object whose owner is `owner`:
    /// the owner plus the next `replication_degree - 1` nodes in ring order.
    pub fn default_replicas(&self, owner: NodeId) -> zeus_proto::ReplicaSet {
        let readers = (1..self.replication_degree as u16)
            .map(|i| NodeId((owner.0 + i) % self.nodes as u16))
            .collect::<Vec<_>>();
        zeus_proto::ReplicaSet::new(owner, readers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = ZeusConfig::default();
        assert_eq!(c.nodes, 3);
        assert_eq!(c.directory_replicas, 3);
        assert_eq!(c.replication_degree, 3);
        // The locality engine defaults to the null policy: existing
        // deployments and recorded chaos runs are untouched.
        assert_eq!(c.policy, PolicyKind::Reactive);
        assert_eq!(
            c.with_policy(PolicyKind::Predictive).policy,
            PolicyKind::Predictive
        );
    }

    #[test]
    fn with_nodes_clamps_directory_and_replication() {
        let c = ZeusConfig::with_nodes(2);
        assert_eq!(c.directory_replicas, 2);
        assert_eq!(c.replication_degree, 2);
        assert_eq!(c.view_replica_set(), vec![NodeId(0), NodeId(1)]);
        let c6 = ZeusConfig::with_nodes(6);
        assert_eq!(c6.directory_replicas, 3);
        assert_eq!(c6.directory(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c6.view_replica_set(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c6.all_nodes().len(), 6);
    }

    #[test]
    fn replication_builder_clamps() {
        let c = ZeusConfig::with_nodes(3).replication(5);
        assert_eq!(c.replication_degree, 3);
        let c = ZeusConfig::with_nodes(3).replication(0);
        assert_eq!(c.replication_degree, 1);
    }

    #[test]
    fn default_replicas_wrap_around_ring() {
        let c = ZeusConfig::with_nodes(3);
        let rs = c.default_replicas(NodeId(2));
        assert_eq!(rs.owner, Some(NodeId(2)));
        assert_eq!(rs.readers, vec![NodeId(0), NodeId(1)]);
        assert_eq!(rs.replication_degree(), 3);
    }
}
