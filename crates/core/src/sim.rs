//! Deterministic multi-node simulation harness.
//!
//! `SimCluster` drives a full Zeus deployment — every node's engines plus the
//! simulated network — from a single thread, which makes protocol executions
//! (including faulty ones) completely reproducible from a seed. All
//! integration tests, the fault-injection tests and the bounded
//! model-checking harness (`check_invariants`, reproducing the paper's TLA+
//! invariants) run on this runtime.
//!
//! The cluster state lives behind one mutex so `SimCluster` can hand out
//! [`SimSession`]s implementing the session-first client API
//! ([`crate::client`]) next to the direct `&mut self` protocol-driving
//! surface the invariant tests use. The simulator stays single-threaded and
//! deterministic — the lock only decouples session lifetimes from the
//! cluster borrow, it is never contended in a deterministic run.

use std::collections::HashSet;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

use bytes::Bytes;
use zeus_net::sim::{NetConfig, SimNetwork};
use zeus_net::Envelope;
use zeus_proto::messages::NackReason;
use zeus_proto::{AccessLevel, DataTs, NodeId, ObjectId, OwnershipRequestKind, RequestId, TState};

use crate::client::{AdminError, ClusterDriver, RetryPolicy, Session, TxPayload, TxTicket};
use crate::config::ZeusConfig;
use crate::message::Message;
use crate::node::{RequestState, ZeusNode};
use crate::stats::{LatencyHistogram, NodeStats};
use crate::txn::{ReadOutcome, TxCtx, TxError, WriteOutcome};

/// A deterministic, single-threaded Zeus cluster over the simulated network.
#[derive(Debug)]
pub struct SimCluster {
    config: ZeusConfig,
    inner: Arc<Mutex<SimInner>>,
}

/// The cluster state proper; every method that was on `SimCluster` before
/// the session API lives here, shared between the cluster facade and its
/// sessions.
#[derive(Debug)]
struct SimInner {
    config: ZeusConfig,
    nodes: Vec<ZeusNode>,
    net: SimNetwork<Message>,
    crashed: HashSet<NodeId>,
}

/// Shared read access to one node of a [`SimCluster`] (assertions in tests).
pub struct NodeRef<'a> {
    guard: MutexGuard<'a, SimInner>,
    index: usize,
}

impl Deref for NodeRef<'_> {
    type Target = ZeusNode;
    fn deref(&self) -> &ZeusNode {
        &self.guard.nodes[self.index]
    }
}

/// Exclusive access to one node of a [`SimCluster`] (direct protocol-level
/// manipulation).
pub struct NodeRefMut<'a> {
    guard: MutexGuard<'a, SimInner>,
    index: usize,
}

impl Deref for NodeRefMut<'_> {
    type Target = ZeusNode;
    fn deref(&self) -> &ZeusNode {
        &self.guard.nodes[self.index]
    }
}

impl DerefMut for NodeRefMut<'_> {
    fn deref_mut(&mut self) -> &mut ZeusNode {
        &mut self.guard.nodes[self.index]
    }
}

impl SimCluster {
    /// Creates a cluster with a reliable, low-latency simulated network.
    pub fn new(config: ZeusConfig) -> Self {
        Self::with_network(config, NetConfig::reliable(2))
    }

    /// Creates a cluster with an explicit network configuration (latency,
    /// loss, duplication, seed).
    pub fn with_network(config: ZeusConfig, net: NetConfig) -> Self {
        let nodes = (0..config.nodes as u16)
            .map(|i| ZeusNode::new(NodeId(i), config.clone()))
            .collect();
        SimCluster {
            inner: Arc::new(Mutex::new(SimInner {
                config: config.clone(),
                nodes,
                net: SimNetwork::new(net),
                crashed: HashSet::new(),
            })),
            config,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SimInner> {
        self.inner.lock().unwrap()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ZeusConfig {
        &self.config
    }

    /// Number of nodes (live and crashed).
    pub fn len(&self) -> usize {
        self.config.nodes
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.config.nodes == 0
    }

    /// Acquires the state lock for a node accessor, turning the
    /// hold-a-guard-across-another-cluster-call mistake into an immediate
    /// panic instead of a silent self-deadlock (the mutex is not
    /// reentrant). Node accessors are a single-threaded inspection API;
    /// concurrent access belongs on sessions, which block normally.
    fn lock_for_node_access(&self) -> MutexGuard<'_, SimInner> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => panic!(
                "SimCluster::node()/node_mut(): cluster state is already locked — \
                 a NodeRef/NodeRefMut is being held across another SimCluster or \
                 SimSession call (drop it first), or node accessors are being used \
                 across threads (use sessions for concurrent access)"
            ),
            Err(std::sync::TryLockError::Poisoned(e)) => panic!("SimCluster poisoned: {e}"),
        }
    }

    /// Immutable access to a node (assertions in tests). The returned guard
    /// locks the whole cluster: drop it before the next `SimCluster` /
    /// `SimSession` call. A *second* `node()`/`node_mut()` while one is
    /// held panics with a diagnostic; the other methods block, so holding a
    /// guard across them deadlocks — keep node accessors to single
    /// statements (see [`SimCluster::node_mut`]).
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef {
            guard: self.lock_for_node_access(),
            index: id.index(),
        }
    }

    /// Mutable access to a node (direct protocol-level manipulation). The
    /// returned guard locks the whole cluster — the accessor itself panics
    /// with a diagnostic instead of blocking when the state is already
    /// locked (e.g. two `node()` temporaries in one expression), but other
    /// cluster/session methods use plain blocking locks, so holding a guard
    /// across *them* still deadlocks. Keep node accessors to single
    /// statements.
    pub fn node_mut(&mut self, id: NodeId) -> NodeRefMut<'_> {
        NodeRefMut {
            guard: self.lock_for_node_access(),
            index: id.index(),
        }
    }

    /// The network's current simulated time.
    pub fn now(&self) -> u64 {
        self.lock().net.now()
    }

    /// Aggregate network statistics.
    pub fn net_stats(&self) -> zeus_net::NetStats {
        self.lock().net.stats().clone()
    }

    /// Nodes currently considered live by the harness.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.lock().live_nodes()
    }

    /// Creates `object` on every node with its home placement: `owner` plus
    /// the configured number of reader replicas.
    pub fn create_object(&self, object: ObjectId, data: impl Into<Bytes>, owner: NodeId) {
        self.lock().create_object(object, data.into(), owner);
    }

    /// Delivers one batch of in-flight messages (advancing simulated time)
    /// and lets every live node tick. Returns how many messages were
    /// delivered.
    pub fn step(&mut self) -> usize {
        self.lock().step()
    }

    /// Advances simulated time by `dt` ticks, delivering everything that
    /// falls due along the way and ticking the live nodes so periodic work
    /// (heartbeats, lease expiry, retransmission) runs. Unlike
    /// [`SimCluster::settle`] this drives the clock even when nothing is in
    /// flight — it is how the chaos harness opens lease-expiry windows.
    pub fn advance_ticks(&mut self, dt: u64) {
        self.lock().advance_ticks(dt)
    }

    /// Steps until no node has outgoing traffic and nothing is in flight, or
    /// until `max_steps` is exceeded (which panics — a protocol liveness
    /// failure in tests).
    pub fn run_until_quiescent(&mut self, max_steps: usize) {
        self.lock().run_until_quiescent(max_steps)
    }

    /// Like [`SimCluster::run_until_quiescent`] but without panicking:
    /// returns `true` if the cluster reached quiescence within the budget.
    /// Used by randomised fault-injection tests where a schedule may leave
    /// recovery work pending at the end of the exploration window.
    pub fn settle(&mut self, max_steps: usize) -> bool {
        self.lock().settle(max_steps)
    }

    /// Runs a write transaction on `node`, transparently acquiring ownership
    /// (and retrying aborts) until it commits or the retry budget is
    /// exhausted — the synchronous façade an application thread sees.
    /// Sessions ([`SimCluster::handle`]) are the same path with an explicit
    /// [`RetryPolicy`].
    pub fn execute_write<R>(
        &mut self,
        node: NodeId,
        f: impl FnMut(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        let attempts = self.config.max_ownership_retries;
        self.lock().execute_write(node, attempts, f)
    }

    /// Runs a read-only transaction on `node`, retrying transient conflicts
    /// (in-flight reliable commits) a bounded number of times.
    pub fn execute_read<R>(
        &mut self,
        node: NodeId,
        f: impl FnMut(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        let attempts = self.config.max_ownership_retries;
        self.lock().execute_read(node, attempts, f)
    }

    // ------------------------------------------------------------------
    // Link-level fault primitives (the coarser faults — isolate, crash,
    // expel — live on [`crate::client::Admin`])
    // ------------------------------------------------------------------

    /// Cuts both directions between `a` and `b` (messages already in flight
    /// still deliver; new sends are dropped).
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.lock().net.faults_mut().partition(a, b);
    }

    /// Adds `extra` ticks of one-way latency on `from → to`.
    pub fn spike_link(&mut self, from: NodeId, to: NodeId, extra: u64) {
        self.lock().net.faults_mut().spike(from, to, extra);
    }

    /// Drops the next `count` messages sent on `from → to`.
    pub fn drop_burst(&mut self, from: NodeId, to: NodeId, count: u64) {
        self.lock().net.faults_mut().drop_burst(from, to, count);
    }

    /// Aggregated statistics over live nodes.
    pub fn aggregate_stats(&self) -> NodeStats {
        self.lock().aggregate_stats()
    }

    /// Checks the paper's safety invariants over the current (quiescent)
    /// state, returning a description of the first violation found:
    ///
    /// 1. at most one live owner per object, holding the most recent value,
    /// 2. live replicas in `t_state = Valid` with the same version hold
    ///    identical data, and no valid reader is newer than the owner,
    /// 3. live directory replicas agree on each object's owner.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.lock().check_invariants()
    }
}

impl ClusterDriver for SimCluster {
    type Session = SimSession;

    fn nodes(&self) -> usize {
        self.config.nodes
    }

    fn handle(&self, id: NodeId) -> SimSession {
        SimSession {
            node: id,
            inner: Arc::clone(&self.inner),
            policy: RetryPolicy::with_budget(self.config.max_ownership_retries),
        }
    }

    fn create_object(&self, object: ObjectId, data: Bytes, owner: NodeId) {
        SimCluster::create_object(self, object, data, owner);
    }

    fn migrate(&self, object: ObjectId, to: NodeId) -> Result<u64, TxError> {
        let attempts = self.config.max_ownership_retries;
        self.lock()
            .acquire(to, object, OwnershipRequestKind::AcquireOwner, attempts)
    }

    fn aggregate_stats(&self) -> NodeStats {
        SimCluster::aggregate_stats(self)
    }

    fn net_stats(&self) -> zeus_net::NetStats {
        SimCluster::net_stats(self)
    }

    fn quiesce(&self) {
        self.lock().settle(200_000);
    }

    fn admin_expel(&self, node: NodeId) -> Result<(), AdminError> {
        self.lock().admin_remove(node);
        Ok(())
    }

    fn admin_readmit(&self, node: NodeId) -> Result<(), AdminError> {
        self.lock().admin_restore(node);
        Ok(())
    }

    fn admin_crash(&self, node: NodeId) -> Result<(), AdminError> {
        self.lock().fail_node(node);
        Ok(())
    }

    fn admin_restart(&self, node: NodeId) -> Result<(), AdminError> {
        if self.lock().restart_node(node) {
            Ok(())
        } else {
            Err(AdminError::NotCrashed(node))
        }
    }

    fn fault_isolate(&self, node: NodeId) {
        self.lock().isolate_node(node);
    }

    fn fault_heal(&self, node: NodeId) {
        self.lock().heal_node(node);
    }

    fn fault_heal_all(&self) {
        self.lock().net.faults_mut().heal_all();
    }
}

/// Client session to one node of a [`SimCluster`] (see [`Session`]).
///
/// Transactions execute synchronously — the session drives the simulated
/// network under the hood, so a `write_txn` observes exactly the semantics
/// the cluster's own `execute_write` façade provides, and
/// [`Session::submit_write`] returns an already-resolved ticket.
#[derive(Debug, Clone)]
pub struct SimSession {
    node: NodeId,
    inner: Arc<Mutex<SimInner>>,
    policy: RetryPolicy,
}

impl Session for SimSession {
    fn node(&self) -> NodeId {
        self.node
    }

    fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn write_txn<T, F>(&self, f: F) -> Result<T, TxError>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static,
    {
        self.inner
            .lock()
            .unwrap()
            .execute_write(self.node, self.policy.max_attempts, f)
    }

    fn read_txn<T, F>(&self, f: F) -> Result<T, TxError>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static,
    {
        self.inner
            .lock()
            .unwrap()
            .execute_read(self.node, self.policy.max_attempts, f)
    }

    fn submit_write<T, F>(&self, f: F) -> TxTicket<T>
    where
        T: TxPayload,
        F: FnMut(&mut TxCtx<'_>) -> Result<T, TxError> + Send + 'static,
    {
        TxTicket::ready(self.write_txn(f))
    }

    fn drain(&self) -> Result<(), TxError> {
        // Submissions resolve synchronously; nothing can be in flight.
        Ok(())
    }

    fn acquire(&self, object: ObjectId, kind: OwnershipRequestKind) -> Result<(), TxError> {
        self.inner
            .lock()
            .unwrap()
            .acquire(self.node, object, kind, self.policy.max_attempts)
            .map(|_| ())
    }

    fn stats(&self) -> Result<(NodeStats, LatencyHistogram), TxError> {
        let inner = self.inner.lock().unwrap();
        let node = &inner.nodes[self.node.index()];
        Ok((node.stats(), node.ownership_latency().clone()))
    }
}

impl SimInner {
    fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u16)
            .map(NodeId)
            .filter(|n| !self.crashed.contains(n))
            .collect()
    }

    fn create_object(&mut self, object: ObjectId, data: Bytes, owner: NodeId) {
        let replicas = self.config.default_replicas(owner);
        for node in &mut self.nodes {
            node.create_object(object, data.clone(), replicas.clone());
        }
    }

    // ------------------------------------------------------------------
    // Execution driver
    // ------------------------------------------------------------------

    fn step(&mut self) -> usize {
        self.ship_outboxes();
        // Deliver.
        let batch = self.net.step();
        let delivered = batch.len();
        self.deliver(batch);
        self.tick_nodes(self.net.now());
        delivered
    }

    /// Moves every live node's queued messages into the network; a crashed
    /// node's queued messages are lost.
    fn ship_outboxes(&mut self) {
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u16);
            if self.crashed.contains(&id) {
                self.nodes[i].drain_outbox();
                continue;
            }
            for (to, msg) in self.nodes[i].drain_outbox() {
                let bytes = msg.payload_bytes();
                self.net
                    .send(Envelope::with_payload_bytes(id, to, msg, bytes));
            }
        }
    }

    /// Hands a delivered batch to the receiving nodes (crashed receivers
    /// drop their messages).
    fn deliver(&mut self, batch: Vec<Envelope<Message>>) {
        for env in batch {
            if self.crashed.contains(&env.to) {
                continue;
            }
            self.nodes[env.to.index()].handle_message(env.from, env.msg);
        }
    }

    /// Ticks every live node's clock.
    fn tick_nodes(&mut self, now: u64) {
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u16);
            if !self.crashed.contains(&id) {
                self.nodes[i].tick(now);
            }
        }
    }

    fn advance_ticks(&mut self, dt: u64) {
        let target = self.net.now().saturating_add(dt);
        // Advance in retransmission-interval chunks: periodic work
        // (heartbeats, retransmissions) only runs when nodes tick, so a
        // single jump to `target` would collapse several heartbeat rounds
        // into one and distort lease timing.
        let chunk = self.config.retransmit_ticks.max(1);
        while self.net.now() < target {
            let next = (self.net.now() + chunk).min(target);
            loop {
                self.ship_outboxes();
                match self.net.next_delivery_time() {
                    Some(t) if t <= next => {
                        let batch = self.net.advance_to(t);
                        self.deliver(batch);
                        self.tick_nodes(self.net.now());
                    }
                    _ => break,
                }
            }
            let batch = self.net.advance_to(next);
            self.deliver(batch);
            self.tick_nodes(next);
        }
        // Ship whatever the final ticks produced so it is in flight for the
        // caller's next step/settle.
        self.ship_outboxes();
    }

    /// Whether every live node is quiescent and nothing is in flight.
    fn is_cluster_quiescent(&self) -> bool {
        let outbox_work: bool = self
            .live_nodes()
            .iter()
            .any(|n| !self.nodes[n.index()].is_quiescent());
        self.net.in_flight_len() == 0 && !outbox_work
    }

    /// One settling iteration: deliver a batch, and if the network drained
    /// while protocol work is still pending (a retry back-off, a lease that
    /// must expire, a retransmission interval), push time forward so the
    /// periodic machinery can run instead of spinning on a frozen clock.
    fn settle_step(&mut self) {
        self.step();
        if self.net.in_flight_len() == 0 && !self.is_cluster_quiescent() {
            let dt = self.config.retransmit_ticks.max(1);
            self.advance_ticks(dt);
        }
    }

    fn run_until_quiescent(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if self.is_cluster_quiescent() {
                return;
            }
            self.settle_step();
        }
        // One final check: quiescence may have been reached on the last step.
        assert!(
            self.is_cluster_quiescent(),
            "cluster did not quiesce within {max_steps} steps"
        );
    }

    fn settle(&mut self, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if self.is_cluster_quiescent() {
                return true;
            }
            self.settle_step();
        }
        self.is_cluster_quiescent()
    }

    fn execute_write<R>(
        &mut self,
        node: NodeId,
        max_attempts: usize,
        mut f: impl FnMut(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        // `attempts` counts *retries*: transient aborts, failed acquisition
        // rounds, and repeated acquisition rounds after the object was
        // stolen back. Re-executing after the transaction's first
        // successful ownership grant is the normal continuation of the same
        // attempt and is never charged — with a budget of 1 a remote write
        // still commits once its ownership arrives. The loop stays bounded:
        // every iteration either returns or charges, except the one free
        // first-grant continuation.
        let mut attempts = 0;
        let mut granted_rounds = 0usize;
        // Sessions execute synchronously under the cluster mutex, so every
        // command is a batch of one — the counters keep the same meaning as
        // on the threaded runtime without touching message flow (chaos
        // determinism is preserved).
        self.nodes[node.index()].note_command_batch(1);
        loop {
            let outcome = self.nodes[node.index()].execute_write(0, &mut f);
            match outcome {
                WriteOutcome::Committed { value, .. } => return Ok(value),
                WriteOutcome::Aborted { error } => match error {
                    TxError::LockConflict | TxError::ValidationFailed | TxError::ReadConflict => {
                        attempts += 1;
                        if attempts >= max_attempts {
                            // A spent multi-attempt budget reports
                            // RetriesExhausted; a no-retry budget surfaces
                            // the first abort as-is (same contract as the
                            // threaded runtime's attempt_write).
                            return Err(if max_attempts > 1 {
                                TxError::RetriesExhausted
                            } else {
                                error
                            });
                        }
                        // Let in-flight protocol work drain, then retry. This
                        // must not assert quiescence: after a fault the
                        // cluster may legitimately still be recovering.
                        self.settle(10_000);
                    }
                    other => return Err(other),
                },
                WriteOutcome::OwnershipPending { requests } => {
                    match self.wait_for_requests(node, &requests) {
                        Ok(()) => {
                            granted_rounds += 1;
                            if granted_rounds > 1 {
                                // The object was stolen back after an
                                // earlier grant: a fresh round, charged.
                                attempts += 1;
                                if attempts >= max_attempts {
                                    return Err(TxError::RetriesExhausted);
                                }
                            }
                        }
                        // Losing an arbitration (or racing a recovery) is a
                        // transient condition: abort the acquisition and
                        // retry the whole transaction, as the paper's
                        // back-off scheme does (§6.2). Each failed round
                        // costs one attempt.
                        Err(TxError::OwnershipFailed {
                            reason:
                                NackReason::LostArbitration
                                | NackReason::PendingCommit
                                | NackReason::Recovering,
                            ..
                        }) => {
                            attempts += 1;
                            if attempts >= max_attempts {
                                return Err(TxError::RetriesExhausted);
                            }
                            self.settle(10_000);
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
        }
    }

    fn execute_read<R>(
        &mut self,
        node: NodeId,
        max_attempts: usize,
        mut f: impl FnMut(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        self.nodes[node.index()].note_command_batch(1);
        for _ in 0..max_attempts.max(1) {
            match self.nodes[node.index()].execute_read(&mut f) {
                ReadOutcome::Committed { value } => return Ok(value),
                ReadOutcome::Aborted {
                    error: TxError::ReadConflict,
                } => {
                    self.settle(10_000);
                }
                ReadOutcome::Aborted { error } => return Err(error),
            }
        }
        // Same contract as the threaded read path: a spent multi-attempt
        // budget reports RetriesExhausted, a no-retry budget surfaces the
        // conflict as-is.
        Err(if max_attempts > 1 {
            TxError::RetriesExhausted
        } else {
            TxError::ReadConflict
        })
    }

    /// Drives an explicit acquisition of `object` at `node` to completion,
    /// retrying transient rejections like the write path does (§6.2).
    /// Returns the ownership latency in ticks.
    fn acquire(
        &mut self,
        node: NodeId,
        object: ObjectId,
        kind: OwnershipRequestKind,
        max_attempts: usize,
    ) -> Result<u64, TxError> {
        let start = self.net.now();
        for _ in 0..max_attempts {
            if kind == OwnershipRequestKind::AcquireOwner && self.nodes[node.index()].owns(object) {
                return Ok(self.net.now().saturating_sub(start).max(1));
            }
            let req = self.nodes[node.index()].acquire(object, kind);
            match self.wait_for_requests(node, &[req]) {
                Ok(()) => return Ok(self.net.now().saturating_sub(start).max(1)),
                Err(TxError::OwnershipFailed {
                    reason:
                        NackReason::LostArbitration | NackReason::PendingCommit | NackReason::Recovering,
                    ..
                }) => {
                    self.settle(10_000);
                }
                Err(other) => return Err(other),
            }
        }
        Err(TxError::RetriesExhausted)
    }

    fn wait_for_requests(&mut self, node: NodeId, requests: &[RequestId]) -> Result<(), TxError> {
        for _ in 0..200_000usize {
            let mut all_done = true;
            for &req in requests {
                match self.nodes[node.index()].request_state(req) {
                    RequestState::Completed => {}
                    RequestState::Pending => {
                        all_done = false;
                    }
                    RequestState::Failed(NackReason::DataLoss) => {
                        self.abandon_requests(node, requests);
                        return Err(TxError::DataLoss);
                    }
                    RequestState::Failed(reason) => {
                        self.abandon_requests(node, requests);
                        return Err(TxError::OwnershipFailed {
                            object: ObjectId(0),
                            reason,
                        });
                    }
                }
            }
            if all_done {
                return Ok(());
            }
            self.step();
            // If the network drained but requests are still pending (e.g.
            // waiting on a retry back-off), force time forward.
            if self.net.in_flight_len() == 0 {
                self.net.advance_by(10);
            }
        }
        self.abandon_requests(node, requests);
        Err(TxError::OwnershipFailed {
            object: ObjectId(0),
            reason: NackReason::Recovering,
        })
    }

    /// Abandons whatever is still pending of `requests` — the transaction
    /// gave up on them (back-off, §6.2) and will issue fresh ones on retry;
    /// leaving them behind would retry and retransmit forever.
    fn abandon_requests(&mut self, node: NodeId, requests: &[RequestId]) {
        for &req in requests {
            if self.nodes[node.index()].request_state(req) == RequestState::Pending {
                self.nodes[node.index()].abandon_request(req);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn fail_node(&mut self, node: NodeId) {
        self.crashed.insert(node);
        self.net.faults_mut().crash(node);
        // Tell the view service to reconfigure (stand-in for lease expiry,
        // which the lease-based path also covers in tests).
        self.admin_remove(node);
    }

    /// Restarts a crashed node: the process comes back (with whatever frozen
    /// state it had — the re-admission path wipes it) and its re-admission
    /// is proposed to the view service. Returns `false` if the node was not
    /// crashed.
    fn restart_node(&mut self, node: NodeId) -> bool {
        if !self.crashed.remove(&node) {
            return false;
        }
        self.net.faults_mut().revive(node);
        self.admin_restore(node);
        true
    }

    fn isolate_node(&mut self, node: NodeId) {
        for i in 0..self.nodes.len() as u16 {
            let peer = NodeId(i);
            if peer != node {
                self.net.faults_mut().partition(node, peer);
            }
        }
    }

    fn heal_node(&mut self, node: NodeId) {
        for i in 0..self.nodes.len() as u16 {
            let peer = NodeId(i);
            if peer != node {
                self.net.faults_mut().heal_partition(node, peer);
            }
        }
    }

    /// Routes an expulsion through the view service: every live view
    /// replica records the ban and proposes; the change commits once a
    /// majority of the view-replica set grants. No single node's death can
    /// wedge this — any live majority suffices.
    fn admin_remove(&mut self, node: NodeId) {
        for vr in self.config.view_replica_set() {
            if vr != node && !self.crashed.contains(&vr) {
                self.nodes[vr.index()].admin_remove_node(node);
            }
        }
    }

    /// Routes a re-admission through the view service (see
    /// [`SimInner::admin_remove`]).
    fn admin_restore(&mut self, node: NodeId) {
        for vr in self.config.view_replica_set() {
            if vr != node && !self.crashed.contains(&vr) {
                self.nodes[vr.index()].admin_add_node(node);
            }
        }
    }

    fn aggregate_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for id in self.live_nodes() {
            total.merge(&self.nodes[id.index()].stats());
        }
        total
    }

    // ------------------------------------------------------------------
    // Invariant checking (TLA+ stand-in, §8 "Formal verification")
    // ------------------------------------------------------------------

    fn check_invariants(&self) -> Result<(), String> {
        let live = self.live_nodes();
        let mut objects: HashSet<ObjectId> = HashSet::new();
        for &id in &live {
            objects.extend(self.nodes[id.index()].store().object_ids());
        }
        // Deterministic iteration: which violation is reported first must
        // not depend on hash order (the chaos explorer compares reports).
        let mut objects: Vec<ObjectId> = objects.into_iter().collect();
        objects.sort_unstable();
        for object in objects {
            let mut owners = Vec::new();
            let mut max_ts = DataTs::ZERO;
            let mut owner_ts = None;
            let mut valid_entries: Vec<(NodeId, DataTs, Bytes)> = Vec::new();
            for &id in &live {
                let node = &self.nodes[id.index()];
                if let Some(entry) = node.store().get(object) {
                    max_ts = max_ts.max(entry.ts);
                    if entry.level == AccessLevel::Owner {
                        owners.push(id);
                        owner_ts = Some(entry.ts);
                    }
                    if entry.t_state == TState::Valid {
                        valid_entries.push((id, entry.ts, entry.data.clone()));
                    }
                }
            }
            if owners.len() > 1 {
                return Err(format!("object {object} has multiple owners: {owners:?}"));
            }
            if let (Some(ots), [_single_owner]) = (owner_ts, owners.as_slice()) {
                if ots < max_ts {
                    return Err(format!(
                        "object {object}: owner holds {ots} < max replica timestamp {max_ts}"
                    ));
                }
            }
            for (i, (a_node, a_ts, a_data)) in valid_entries.iter().enumerate() {
                for (b_node, b_ts, b_data) in valid_entries.iter().skip(i + 1) {
                    if a_ts == b_ts && a_data != b_data {
                        return Err(format!(
                            "object {object}: valid replicas {a_node} and {b_node} diverge at {a_ts}"
                        ));
                    }
                }
            }
            // Directory agreement: all live directory replicas that hold
            // metadata for the object must name the same owner.
            let mut dir_owners: HashSet<Option<NodeId>> = HashSet::new();
            for dir in self.config.directory() {
                if !live.contains(&dir) {
                    continue;
                }
                if let Some(owner) = self.nodes[dir.index()].directory_owner(object) {
                    dir_owners.insert(owner);
                }
            }
            if dir_owners.len() > 1 {
                return Err(format!(
                    "object {object}: directory replicas disagree on the owner: {dir_owners:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> SimCluster {
        SimCluster::new(ZeusConfig::with_nodes(nodes))
    }

    #[test]
    fn local_transactions_commit_and_replicate() {
        let mut c = cluster(3);
        let object = ObjectId(1);
        c.create_object(object, Bytes::from_static(b"0"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"1")))
            .unwrap();
        c.run_until_quiescent(10_000);
        // Every replica converged to the new value and is Valid.
        for n in [NodeId(0), NodeId(1), NodeId(2)] {
            let entry = c.node(n).store().get(object).unwrap();
            assert_eq!(entry.data, Bytes::from_static(b"1"), "replica {n}");
            assert_eq!(entry.t_state, TState::Valid);
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn remote_write_transparently_migrates_ownership() {
        let mut c = cluster(3);
        let object = ObjectId(7);
        c.create_object(object, Bytes::from_static(b"x"), NodeId(0));
        assert!(!c.node(NodeId(2)).owns(object));
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"y")))
            .unwrap();
        c.run_until_quiescent(10_000);
        assert!(c.node(NodeId(2)).owns(object), "ownership moved to node 2");
        assert!(!c.node(NodeId(0)).owns(object), "old owner demoted");
        // Subsequent writes on node 2 are purely local (no new requests).
        let before = c.node(NodeId(2)).ownership_stats().requests_issued;
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"z")))
            .unwrap();
        assert_eq!(
            c.node(NodeId(2)).ownership_stats().requests_issued,
            before,
            "locality: no further ownership traffic"
        );
        c.run_until_quiescent(10_000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn no_retry_session_still_commits_remote_writes() {
        // Same contract as the threaded runtime: the first successful
        // ownership grant is free even under RetryPolicy::no_retry().
        let c = cluster(3);
        let object = ObjectId(8);
        c.create_object(object, Bytes::from_static(b"x"), NodeId(0));
        let session = c.handle(NodeId(2)).with_retry(RetryPolicy::no_retry());
        session
            .write_txn(move |tx| {
                tx.write(object, Bytes::from_static(b"y"))?;
                Ok(())
            })
            .expect("grant is not charged against the retry budget");
        assert!(c.node(NodeId(2)).owns(object));
    }

    #[test]
    fn read_only_transactions_run_on_any_replica() {
        let mut c = cluster(3);
        let object = ObjectId(3);
        c.create_object(object, Bytes::from_static(b"init"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(10_000);
        for reader in [NodeId(0), NodeId(1), NodeId(2)] {
            let value = c.execute_read(reader, |tx| tx.read(object)).unwrap();
            assert_eq!(value, Bytes::from_static(b"v1"), "replica {reader}");
        }
        // No network traffic is needed for the reads themselves: the message
        // count does not change while executing them.
        let before = c.net_stats().messages_sent;
        c.execute_read(NodeId(1), |tx| tx.read(object)).unwrap();
        assert_eq!(c.net_stats().messages_sent, before);
    }

    #[test]
    fn multi_object_transaction_pulls_everything_local() {
        let mut c = cluster(3);
        let a = ObjectId(10);
        let b = ObjectId(11);
        c.create_object(a, Bytes::from_static(b"1"), NodeId(0));
        c.create_object(b, Bytes::from_static(b"2"), NodeId(1));
        // A transaction on node 2 touching both objects must migrate both.
        c.execute_write(NodeId(2), |tx| {
            let va = tx.read(a)?;
            let vb = tx.read(b)?;
            tx.write(a, [va.as_ref(), vb.as_ref()].concat())?;
            tx.write(b, Bytes::from_static(b"done"))?;
            Ok(())
        })
        .unwrap();
        c.run_until_quiescent(10_000);
        assert!(c.node(NodeId(2)).owns(a));
        assert!(c.node(NodeId(2)).owns(b));
        let merged = c.execute_read(NodeId(2), |tx| tx.read(a)).unwrap();
        assert_eq!(merged, Bytes::from_static(b"12"));
        c.check_invariants().unwrap();
    }

    #[test]
    fn owner_failure_recovers_and_cluster_continues() {
        let mut c = cluster(3);
        let object = ObjectId(50);
        c.create_object(object, Bytes::from_static(b"important"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(10_000);

        c.admin().crash(NodeId(0)).unwrap();
        c.run_until_quiescent(50_000);

        // The data survives on the readers and a new owner can take over.
        c.execute_write(NodeId(1), |tx| {
            let old = tx.read(object)?;
            assert_eq!(old, Bytes::from_static(b"v1"), "no committed data lost");
            tx.write(object, Bytes::from_static(b"v2"))
        })
        .unwrap();
        c.run_until_quiescent(50_000);
        assert!(c.node(NodeId(1)).owns(object));
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_latency_is_measured() {
        let c = cluster(3);
        let object = ObjectId(70);
        c.create_object(object, Bytes::from_static(b"m"), NodeId(0));
        let latency = c.migrate(object, NodeId(2)).unwrap();
        assert!(latency > 0);
        assert!(c.node(NodeId(2)).owns(object));
        assert!(c.node(NodeId(2)).ownership_latency().count() >= 1);
    }

    fn chaos_cluster(nodes: usize, lease_ticks: u64) -> SimCluster {
        let mut config = ZeusConfig::with_nodes(nodes);
        config.lease_ticks = lease_ticks;
        SimCluster::new(config)
    }

    #[test]
    fn isolated_node_fences_itself_and_recovers_on_heal() {
        let mut c = chaos_cluster(3, 2_000);
        let object = ObjectId(9);
        c.create_object(object, Bytes::from_static(b"x"), NodeId(2));
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"a")))
            .unwrap();
        c.run_until_quiescent(50_000);

        c.admin().isolate(NodeId(2)).unwrap();
        // Past one lease of silence (but before the failure detector's
        // expulsion threshold of lease + grace) the node must refuse to
        // serve.
        c.advance_ticks(2_500);
        let write = c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"b")));
        assert_eq!(write.unwrap_err(), TxError::Fenced);
        let read = c.execute_read(NodeId(2), |tx| tx.read(object));
        assert_eq!(read.unwrap_err(), TxError::Fenced);
        assert!(c.node(NodeId(2)).stats().txs_fenced >= 2);

        // Healing before expulsion: leases renew and the node serves again
        // without any view change.
        c.admin().heal(NodeId(2)).unwrap();
        c.advance_ticks(1_200);
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"c")))
            .unwrap();
        c.run_until_quiescent(50_000);
        assert_eq!(c.node(NodeId(0)).epoch(), zeus_proto::Epoch::ZERO);
        c.check_invariants().unwrap();
    }

    #[test]
    fn falsely_suspected_node_is_readmitted_via_view_change() {
        let mut c = chaos_cluster(3, 2_000);
        let object = ObjectId(4);
        c.create_object(object, Bytes::from_static(b"v0"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(50_000);

        // Node 2 is alive but none of its heartbeats get through: the view
        // service expels it after lease + grace.
        c.admin().isolate(NodeId(2)).unwrap();
        c.advance_ticks(6_000);
        assert!(
            !c.node(NodeId(0)).cluster_view().is_live(NodeId(2)),
            "the view service must have expelled the silent node"
        );
        let expelled_epoch = c.node(NodeId(0)).epoch();
        assert!(expelled_epoch > zeus_proto::Epoch::ZERO);
        // The cluster keeps committing without it.
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v2")))
            .unwrap();
        c.settle(100_000);

        // Heal: the node's next heartbeat re-admits it via a view change.
        c.admin().heal(NodeId(2)).unwrap();
        c.advance_ticks(4_000);
        assert!(
            c.node(NodeId(0)).cluster_view().is_live(NodeId(2)),
            "heartbeating node must be re-admitted"
        );
        assert!(c.node(NodeId(0)).epoch() > expelled_epoch);
        assert!(
            c.node(NodeId(2)).stats().rejoin_resets >= 1,
            "re-admitted node must have discarded its stale state"
        );
        // It serves again — through the ownership protocol, not stale state.
        c.execute_write(NodeId(2), |tx| {
            let v = tx.read(object)?;
            assert_eq!(v, Bytes::from_static(b"v2"), "no stale value");
            tx.write(object, Bytes::from_static(b"v3"))
        })
        .unwrap();
        c.run_until_quiescent(100_000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn readmitted_node_never_serves_stale_reads() {
        let mut c = chaos_cluster(3, 2_000);
        let object = ObjectId(11);
        c.create_object(object, Bytes::from_static(b"v0"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(50_000);
        assert_eq!(
            c.execute_read(NodeId(2), |tx| tx.read(object)).unwrap(),
            Bytes::from_static(b"v1")
        );

        // While node 2 is out, the value moves on.
        c.admin().isolate(NodeId(2)).unwrap();
        c.advance_ticks(6_000);
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v2")))
            .unwrap();
        c.settle(100_000);
        assert_eq!(
            c.execute_read(NodeId(1), |tx| tx.read(object)).unwrap(),
            Bytes::from_static(b"v2")
        );

        c.admin().heal(NodeId(2)).unwrap();
        c.advance_ticks(4_000);
        c.settle(100_000);
        // The re-admitted node dropped its v1 replica: a read either fails
        // (no replica) or, never, returns the stale value.
        match c.execute_read(NodeId(2), |tx| tx.read(object)) {
            Ok(v) => assert_eq!(v, Bytes::from_static(b"v2"), "stale read"),
            Err(TxError::NotReplicated { .. } | TxError::RetriesExhausted) => {}
            Err(other) => panic!("unexpected read error: {other:?}"),
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn admin_removed_node_stays_out_despite_heartbeats() {
        let mut c = chaos_cluster(3, 2_000);
        let object = ObjectId(21);
        c.create_object(object, Bytes::from_static(b"d"), NodeId(0));
        // Operator scale-in: node 2 keeps running and heartbeating.
        c.admin().expel(NodeId(2)).unwrap();
        c.advance_ticks(4_000);
        assert!(
            !c.node(NodeId(0)).cluster_view().is_live(NodeId(2)),
            "the view service must have committed the expulsion"
        );
        let removal_epoch = c.node(NodeId(0)).epoch();
        assert!(removal_epoch > zeus_proto::Epoch::ZERO);
        c.advance_ticks(10_000);
        assert!(
            !c.node(NodeId(0)).cluster_view().is_live(NodeId(2)),
            "scale-in must not be undone by heartbeats"
        );
        assert_eq!(c.node(NodeId(0)).epoch(), removal_epoch);
        // The removed node hears nothing back and fences itself.
        let write = c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"z")));
        assert_eq!(write.unwrap_err(), TxError::Fenced);
        // An explicit scale-out lifts the ban and re-admits it cleanly.
        c.admin().readmit(NodeId(2)).unwrap();
        c.advance_ticks(4_000);
        assert!(c.node(NodeId(0)).cluster_view().is_live(NodeId(2)));
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"y")))
            .unwrap();
        c.run_until_quiescent(100_000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn crash_restart_cycle_readmits_with_reset() {
        let mut c = chaos_cluster(3, 2_000);
        let object = ObjectId(30);
        c.create_object(object, Bytes::from_static(b"v0"), NodeId(1));
        c.execute_write(NodeId(1), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(50_000);

        c.admin().crash(NodeId(2)).unwrap();
        c.run_until_quiescent(100_000);
        c.execute_write(NodeId(1), |tx| tx.write(object, Bytes::from_static(b"v2")))
            .unwrap();
        c.run_until_quiescent(100_000);

        assert_eq!(
            c.admin().restart(NodeId(1)),
            Err(AdminError::NotCrashed(NodeId(1))),
            "restart of a running node is a typed error"
        );
        c.admin().restart(NodeId(2)).unwrap();
        c.advance_ticks(4_000);
        c.settle(100_000);
        assert!(c.node(NodeId(0)).cluster_view().is_live(NodeId(2)));
        assert!(c.node(NodeId(2)).stats().rejoin_resets >= 1);
        // The restarted node re-acquires instead of serving its frozen v1.
        c.execute_write(NodeId(2), |tx| {
            let v = tx.read(object)?;
            assert_eq!(v, Bytes::from_static(b"v2"));
            tx.write(object, Bytes::from_static(b"v3"))
        })
        .unwrap();
        c.run_until_quiescent(100_000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn variable_latency_network_still_converges() {
        // The Zeus protocols assume reliable delivery (the paper runs its own
        // retransmitting messaging layer, §3.1) but NOT global ordering:
        // messages between different node pairs may arrive in any order.
        let config = ZeusConfig::with_nodes(3);
        let net = NetConfig {
            min_delay: 1,
            max_delay: 40,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 123,
            link_overrides: Vec::new(),
        };
        let mut c = SimCluster::with_network(config, net);
        let object = ObjectId(5);
        c.create_object(object, Bytes::from_static(b"0"), NodeId(0));
        for i in 0..5u8 {
            // Alternate coordinators so ownership keeps migrating while
            // earlier reliable commits are still in flight.
            let coordinator = NodeId((i % 3) as u16);
            c.execute_write(coordinator, |tx| tx.write(object, vec![i]))
                .unwrap();
        }
        c.run_until_quiescent(100_000);
        for n in [NodeId(0), NodeId(1), NodeId(2)] {
            let entry = c.node(n).store().get(object).unwrap();
            assert_eq!(
                entry.data,
                Bytes::from(vec![4u8]),
                "replica {n} has final value"
            );
        }
        c.check_invariants().unwrap();
    }
}
