//! Deterministic multi-node simulation harness.
//!
//! `SimCluster` drives a full Zeus deployment — every node's engines plus the
//! simulated network — from a single thread, which makes protocol executions
//! (including faulty ones) completely reproducible from a seed. All
//! integration tests, the fault-injection tests and the bounded
//! model-checking harness (`check_invariants`, reproducing the paper's TLA+
//! invariants) run on this runtime.

use std::collections::HashSet;

use bytes::Bytes;
use zeus_net::sim::{NetConfig, SimNetwork};
use zeus_net::Envelope;
use zeus_proto::messages::NackReason;
use zeus_proto::{AccessLevel, NodeId, ObjectId, OwnershipRequestKind, RequestId, TState};

use crate::config::ZeusConfig;
use crate::message::Message;
use crate::node::{RequestState, ZeusNode};
use crate::stats::NodeStats;
use crate::txn::{ReadOutcome, TxCtx, TxError, WriteOutcome};

/// A deterministic, single-threaded Zeus cluster over the simulated network.
#[derive(Debug)]
pub struct SimCluster {
    config: ZeusConfig,
    nodes: Vec<ZeusNode>,
    net: SimNetwork<Message>,
    crashed: HashSet<NodeId>,
}

impl SimCluster {
    /// Creates a cluster with a reliable, low-latency simulated network.
    pub fn new(config: ZeusConfig) -> Self {
        Self::with_network(config, NetConfig::reliable(2))
    }

    /// Creates a cluster with an explicit network configuration (latency,
    /// loss, duplication, seed).
    pub fn with_network(config: ZeusConfig, net: NetConfig) -> Self {
        let nodes = (0..config.nodes as u16)
            .map(|i| ZeusNode::new(NodeId(i), config.clone()))
            .collect();
        SimCluster {
            nodes,
            net: SimNetwork::new(net),
            crashed: HashSet::new(),
            config,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ZeusConfig {
        &self.config
    }

    /// Number of nodes (live and crashed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node (assertions in tests).
    pub fn node(&self, id: NodeId) -> &ZeusNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (direct protocol-level manipulation).
    pub fn node_mut(&mut self, id: NodeId) -> &mut ZeusNode {
        &mut self.nodes[id.index()]
    }

    /// The network's current simulated time.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Aggregate network statistics.
    pub fn net_stats(&self) -> &zeus_net::NetStats {
        self.net.stats()
    }

    /// Nodes currently considered live by the harness.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u16)
            .map(NodeId)
            .filter(|n| !self.crashed.contains(n))
            .collect()
    }

    // ------------------------------------------------------------------
    // Object loading
    // ------------------------------------------------------------------

    /// Creates `object` on every node with its home placement: `owner` plus
    /// the configured number of reader replicas.
    pub fn create_object(&mut self, object: ObjectId, data: impl Into<Bytes>, owner: NodeId) {
        let replicas = self.config.default_replicas(owner);
        let data = data.into();
        for node in &mut self.nodes {
            node.create_object(object, data.clone(), replicas.clone());
        }
    }

    // ------------------------------------------------------------------
    // Execution driver
    // ------------------------------------------------------------------

    /// Delivers one batch of in-flight messages (advancing simulated time)
    /// and lets every live node tick. Returns how many messages were
    /// delivered.
    pub fn step(&mut self) -> usize {
        // Ship outboxes.
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u16);
            if self.crashed.contains(&id) {
                // A crashed node's queued messages are lost.
                self.nodes[i].drain_outbox();
                continue;
            }
            for (to, msg) in self.nodes[i].drain_outbox() {
                let bytes = msg.payload_bytes();
                self.net
                    .send(Envelope::with_payload_bytes(id, to, msg, bytes));
            }
        }
        // Deliver.
        let batch = self.net.step();
        let delivered = batch.len();
        for env in batch {
            if self.crashed.contains(&env.to) {
                continue;
            }
            self.nodes[env.to.index()].handle_message(env.from, env.msg);
        }
        // Tick clocks.
        let now = self.net.now();
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u16);
            if !self.crashed.contains(&id) {
                self.nodes[i].tick(now);
            }
        }
        delivered
    }

    /// Steps until no node has outgoing traffic and nothing is in flight, or
    /// until `max_steps` is exceeded (which panics — a protocol liveness
    /// failure in tests).
    pub fn run_until_quiescent(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            let outbox_work: bool = self
                .live_nodes()
                .iter()
                .any(|n| !self.nodes[n.index()].is_quiescent());
            if self.net.in_flight_len() == 0 && !outbox_work {
                return;
            }
            self.step();
        }
        // One final check: quiescence may have been reached on the last step.
        let outbox_work: bool = self
            .live_nodes()
            .iter()
            .any(|n| !self.nodes[n.index()].is_quiescent());
        assert!(
            self.net.in_flight_len() == 0 && !outbox_work,
            "cluster did not quiesce within {max_steps} steps"
        );
    }

    /// Like [`SimCluster::run_until_quiescent`] but without panicking:
    /// returns `true` if the cluster reached quiescence within the budget.
    /// Used by randomised fault-injection tests where a schedule may leave
    /// recovery work pending at the end of the exploration window.
    pub fn settle(&mut self, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            let outbox_work: bool = self
                .live_nodes()
                .iter()
                .any(|n| !self.nodes[n.index()].is_quiescent());
            if self.net.in_flight_len() == 0 && !outbox_work {
                return true;
            }
            self.step();
        }
        false
    }

    /// Runs a write transaction on `node`, transparently acquiring ownership
    /// (and retrying aborts) until it commits or the retry budget is
    /// exhausted — the synchronous façade an application thread sees.
    pub fn execute_write<R>(
        &mut self,
        node: NodeId,
        f: impl Fn(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        for _attempt in 0..self.config.max_ownership_retries {
            let outcome = self.nodes[node.index()].execute_write(0, &f);
            match outcome {
                WriteOutcome::Committed { value, .. } => return Ok(value),
                WriteOutcome::Aborted { error } => match error {
                    TxError::LockConflict | TxError::ValidationFailed | TxError::ReadConflict => {
                        // Let in-flight protocol work drain, then retry. This
                        // must not assert quiescence: after a fault the
                        // cluster may legitimately still be recovering.
                        self.settle(10_000);
                    }
                    other => return Err(other),
                },
                WriteOutcome::OwnershipPending { requests } => {
                    match self.wait_for_requests(node, &requests) {
                        Ok(()) => {}
                        // Losing an arbitration (or racing a recovery) is a
                        // transient condition: abort the acquisition and
                        // retry the whole transaction, as the paper's
                        // back-off scheme does (§6.2).
                        Err(TxError::OwnershipFailed {
                            reason:
                                NackReason::LostArbitration
                                | NackReason::PendingCommit
                                | NackReason::Recovering,
                            ..
                        }) => {
                            self.settle(10_000);
                        }
                        Err(other) => return Err(other),
                    }
                }
            }
        }
        Err(TxError::RetriesExhausted)
    }

    /// Runs a read-only transaction on `node`, retrying transient conflicts
    /// (in-flight reliable commits) a bounded number of times.
    pub fn execute_read<R>(
        &mut self,
        node: NodeId,
        f: impl Fn(&mut TxCtx<'_>) -> Result<R, TxError>,
    ) -> Result<R, TxError> {
        for _ in 0..self.config.max_ownership_retries {
            match self.nodes[node.index()].execute_read(&f) {
                ReadOutcome::Committed { value } => return Ok(value),
                ReadOutcome::Aborted {
                    error: TxError::ReadConflict,
                } => {
                    self.settle(10_000);
                }
                ReadOutcome::Aborted { error } => return Err(error),
            }
        }
        Err(TxError::RetriesExhausted)
    }

    /// Explicitly migrates `object` to `node` (acquire-owner), driving the
    /// protocol to completion and retrying transient rejections like the
    /// write path does (§6.2). Returns the ownership latency in ticks.
    pub fn migrate(&mut self, object: ObjectId, to: NodeId) -> Result<u64, TxError> {
        let start = self.net.now();
        for _ in 0..self.config.max_ownership_retries {
            if self.nodes[to.index()].owns(object) {
                return Ok(self.net.now().saturating_sub(start).max(1));
            }
            let req = self.nodes[to.index()].acquire(object, OwnershipRequestKind::AcquireOwner);
            match self.wait_for_requests(to, &[req]) {
                Ok(()) => return Ok(self.net.now().saturating_sub(start).max(1)),
                Err(TxError::OwnershipFailed {
                    reason:
                        NackReason::LostArbitration | NackReason::PendingCommit | NackReason::Recovering,
                    ..
                }) => {
                    self.settle(10_000);
                }
                Err(other) => return Err(other),
            }
        }
        Err(TxError::RetriesExhausted)
    }

    fn wait_for_requests(&mut self, node: NodeId, requests: &[RequestId]) -> Result<(), TxError> {
        for _ in 0..200_000usize {
            let mut all_done = true;
            for &req in requests {
                match self.nodes[node.index()].request_state(req) {
                    RequestState::Completed => {}
                    RequestState::Pending => {
                        all_done = false;
                    }
                    RequestState::Failed(reason) => {
                        return Err(TxError::OwnershipFailed {
                            object: ObjectId(0),
                            reason,
                        })
                    }
                }
            }
            if all_done {
                return Ok(());
            }
            self.step();
            // If the network drained but requests are still pending (e.g.
            // waiting on a retry back-off), force time forward.
            if self.net.in_flight_len() == 0 {
                self.net.advance_by(10);
            }
        }
        Err(TxError::OwnershipFailed {
            object: ObjectId(0),
            reason: NackReason::Recovering,
        })
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crashes `node` and triggers a membership reconfiguration on the
    /// surviving manager.
    pub fn fail_node(&mut self, node: NodeId) {
        self.crashed.insert(node);
        self.net.faults_mut().crash(node);
        // Tell the surviving membership manager to reconfigure (stand-in for
        // lease expiry, which the lease-based path also covers in tests).
        if let Some(manager) = self.live_nodes().first().copied() {
            self.nodes[manager.index()].admin_remove_node(node);
        }
    }

    /// Aggregated statistics over live nodes.
    pub fn aggregate_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for id in self.live_nodes() {
            total.merge(&self.nodes[id.index()].stats());
        }
        total
    }

    // ------------------------------------------------------------------
    // Invariant checking (TLA+ stand-in, §8 "Formal verification")
    // ------------------------------------------------------------------

    /// Checks the paper's safety invariants over the current (quiescent)
    /// state, returning a description of the first violation found:
    ///
    /// 1. at most one live owner per object, holding the most recent value,
    /// 2. live replicas in `t_state = Valid` with the same version hold
    ///    identical data, and no valid reader is newer than the owner,
    /// 3. live directory replicas agree on each object's owner.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live = self.live_nodes();
        let mut objects: HashSet<ObjectId> = HashSet::new();
        for &id in &live {
            objects.extend(self.nodes[id.index()].store().object_ids());
        }
        for object in objects {
            let mut owners = Vec::new();
            let mut max_version = 0u64;
            let mut owner_version = None;
            let mut valid_versions: Vec<(NodeId, u64, Bytes)> = Vec::new();
            for &id in &live {
                let node = &self.nodes[id.index()];
                if let Some(entry) = node.store().get(object) {
                    max_version = max_version.max(entry.version);
                    if entry.level == AccessLevel::Owner {
                        owners.push(id);
                        owner_version = Some(entry.version);
                    }
                    if entry.t_state == TState::Valid {
                        valid_versions.push((id, entry.version, entry.data.clone()));
                    }
                }
            }
            if owners.len() > 1 {
                return Err(format!("object {object} has multiple owners: {owners:?}"));
            }
            if let (Some(ov), [_single_owner]) = (owner_version, owners.as_slice()) {
                if ov < max_version {
                    return Err(format!(
                        "object {object}: owner holds version {ov} < max replica version {max_version}"
                    ));
                }
            }
            for window in valid_versions.windows(2) {
                let (a_node, a_ver, a_data) = &window[0];
                let (b_node, b_ver, b_data) = &window[1];
                if a_ver == b_ver && a_data != b_data {
                    return Err(format!(
                        "object {object}: valid replicas {a_node} and {b_node} diverge at version {a_ver}"
                    ));
                }
            }
            // Directory agreement: all live directory replicas that hold
            // metadata for the object must name the same owner.
            let mut dir_owners: HashSet<Option<NodeId>> = HashSet::new();
            for dir in self.config.directory() {
                if !live.contains(&dir) {
                    continue;
                }
                if let Some(owner) = self.nodes[dir.index()].directory_owner(object) {
                    dir_owners.insert(owner);
                }
            }
            if dir_owners.len() > 1 {
                return Err(format!(
                    "object {object}: directory replicas disagree on the owner: {dir_owners:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> SimCluster {
        SimCluster::new(ZeusConfig::with_nodes(nodes))
    }

    #[test]
    fn local_transactions_commit_and_replicate() {
        let mut c = cluster(3);
        let object = ObjectId(1);
        c.create_object(object, Bytes::from_static(b"0"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"1")))
            .unwrap();
        c.run_until_quiescent(10_000);
        // Every replica converged to the new value and is Valid.
        for n in [NodeId(0), NodeId(1), NodeId(2)] {
            let entry = c.node(n).store().get(object).unwrap();
            assert_eq!(entry.data, Bytes::from_static(b"1"), "replica {n}");
            assert_eq!(entry.t_state, TState::Valid);
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn remote_write_transparently_migrates_ownership() {
        let mut c = cluster(3);
        let object = ObjectId(7);
        c.create_object(object, Bytes::from_static(b"x"), NodeId(0));
        assert!(!c.node(NodeId(2)).owns(object));
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"y")))
            .unwrap();
        c.run_until_quiescent(10_000);
        assert!(c.node(NodeId(2)).owns(object), "ownership moved to node 2");
        assert!(!c.node(NodeId(0)).owns(object), "old owner demoted");
        // Subsequent writes on node 2 are purely local (no new requests).
        let before = c.node(NodeId(2)).ownership_stats().requests_issued;
        c.execute_write(NodeId(2), |tx| tx.write(object, Bytes::from_static(b"z")))
            .unwrap();
        assert_eq!(
            c.node(NodeId(2)).ownership_stats().requests_issued,
            before,
            "locality: no further ownership traffic"
        );
        c.run_until_quiescent(10_000);
        c.check_invariants().unwrap();
    }

    #[test]
    fn read_only_transactions_run_on_any_replica() {
        let mut c = cluster(3);
        let object = ObjectId(3);
        c.create_object(object, Bytes::from_static(b"init"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(10_000);
        for reader in [NodeId(0), NodeId(1), NodeId(2)] {
            let value = c.execute_read(reader, |tx| tx.read(object)).unwrap();
            assert_eq!(value, Bytes::from_static(b"v1"), "replica {reader}");
        }
        // No network traffic is needed for the reads themselves: the message
        // count does not change while executing them.
        let before = c.net_stats().messages_sent;
        c.execute_read(NodeId(1), |tx| tx.read(object)).unwrap();
        assert_eq!(c.net_stats().messages_sent, before);
    }

    #[test]
    fn multi_object_transaction_pulls_everything_local() {
        let mut c = cluster(3);
        let a = ObjectId(10);
        let b = ObjectId(11);
        c.create_object(a, Bytes::from_static(b"1"), NodeId(0));
        c.create_object(b, Bytes::from_static(b"2"), NodeId(1));
        // A transaction on node 2 touching both objects must migrate both.
        c.execute_write(NodeId(2), |tx| {
            let va = tx.read(a)?;
            let vb = tx.read(b)?;
            tx.write(a, [va.as_ref(), vb.as_ref()].concat())?;
            tx.write(b, Bytes::from_static(b"done"))?;
            Ok(())
        })
        .unwrap();
        c.run_until_quiescent(10_000);
        assert!(c.node(NodeId(2)).owns(a));
        assert!(c.node(NodeId(2)).owns(b));
        let merged = c.execute_read(NodeId(2), |tx| tx.read(a)).unwrap();
        assert_eq!(merged, Bytes::from_static(b"12"));
        c.check_invariants().unwrap();
    }

    #[test]
    fn owner_failure_recovers_and_cluster_continues() {
        let mut c = cluster(3);
        let object = ObjectId(50);
        c.create_object(object, Bytes::from_static(b"important"), NodeId(0));
        c.execute_write(NodeId(0), |tx| tx.write(object, Bytes::from_static(b"v1")))
            .unwrap();
        c.run_until_quiescent(10_000);

        c.fail_node(NodeId(0));
        c.run_until_quiescent(50_000);

        // The data survives on the readers and a new owner can take over.
        c.execute_write(NodeId(1), |tx| {
            let old = tx.read(object)?;
            assert_eq!(old, Bytes::from_static(b"v1"), "no committed data lost");
            tx.write(object, Bytes::from_static(b"v2"))
        })
        .unwrap();
        c.run_until_quiescent(50_000);
        assert!(c.node(NodeId(1)).owns(object));
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_latency_is_measured() {
        let mut c = cluster(3);
        let object = ObjectId(70);
        c.create_object(object, Bytes::from_static(b"m"), NodeId(0));
        let latency = c.migrate(object, NodeId(2)).unwrap();
        assert!(latency > 0);
        assert!(c.node(NodeId(2)).owns(object));
        assert!(c.node(NodeId(2)).ownership_latency().count() >= 1);
    }

    #[test]
    fn variable_latency_network_still_converges() {
        // The Zeus protocols assume reliable delivery (the paper runs its own
        // retransmitting messaging layer, §3.1) but NOT global ordering:
        // messages between different node pairs may arrive in any order.
        let config = ZeusConfig::with_nodes(3);
        let net = NetConfig {
            min_delay: 1,
            max_delay: 40,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 123,
        };
        let mut c = SimCluster::with_network(config, net);
        let object = ObjectId(5);
        c.create_object(object, Bytes::from_static(b"0"), NodeId(0));
        for i in 0..5u8 {
            // Alternate coordinators so ownership keeps migrating while
            // earlier reliable commits are still in flight.
            let coordinator = NodeId((i % 3) as u16);
            c.execute_write(coordinator, |tx| tx.write(object, vec![i]))
                .unwrap();
        }
        c.run_until_quiescent(100_000);
        for n in [NodeId(0), NodeId(1), NodeId(2)] {
            let entry = c.node(n).store().get(object).unwrap();
            assert_eq!(
                entry.data,
                Bytes::from(vec![4u8]),
                "replica {n} has final value"
            );
        }
        c.check_invariants().unwrap();
    }
}
