//! Process-cluster harness: spawns N `zeus-node` processes on loopback,
//! runs the transfer workload, optionally `kill -9`s one node mid-run and
//! restarts it on the same address, and exits non-zero unless everything
//! (including re-admission of the restarted node) completes.
//!
//! ```text
//! zeus-procs [--config cluster.toml] [--nodes 3] [--ops 150]
//!            [--accounts 48] [--lease-us 200000] [--view-replicas 3]
//!            [--kill 0] [--kill-after-ms 300] [--log-dir procs-logs]
//!            [--seed 42] [--node-bin path/to/zeus-node]
//! ```
//!
//! `--config` reads a `cluster.toml` (see [`zeus_core::ClusterFile`]) whose
//! node table fixes the cluster size and addresses and whose `[cluster]`
//! section supplies `lease_us` / `view_replicas` defaults; explicit flags
//! override file values. Without it, ports are allocated on loopback.
//! `--node-bin` defaults to a `zeus-node` sitting next to this executable
//! (which is where `cargo build` puts both). Per-node logs are written to
//! `--log-dir`; the multiprocess CI job uploads them on failure.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use zeus_core::procs::{run_harness, HarnessOpts};
use zeus_core::{ClusterFile, NodeId};

fn parse(args: impl Iterator<Item = String>) -> Result<HarnessOpts, String> {
    let mut opts = HarnessOpts::default();
    let mut node_bin: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut nodes: Option<usize> = None;
    let mut lease_us: Option<u64> = None;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--config" => config_path = Some(PathBuf::from(value("--config")?)),
            "--nodes" => {
                nodes = Some(
                    value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--ops" => opts.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--accounts" => {
                opts.accounts = value("--accounts")?
                    .parse()
                    .map_err(|e| format!("--accounts: {e}"))?
            }
            "--lease-us" => {
                lease_us = Some(
                    value("--lease-us")?
                        .parse()
                        .map_err(|e| format!("--lease-us: {e}"))?,
                )
            }
            "--view-replicas" => {
                opts.view_replicas = Some(
                    value("--view-replicas")?
                        .parse()
                        .map_err(|e| format!("--view-replicas: {e}"))?,
                )
            }
            "--kill" => {
                opts.kill = Some(NodeId(
                    value("--kill")?
                        .parse::<u16>()
                        .map_err(|e| format!("--kill: {e}"))?,
                ))
            }
            "--kill-after-ms" => {
                opts.kill_after = Duration::from_millis(
                    value("--kill-after-ms")?
                        .parse()
                        .map_err(|e| format!("--kill-after-ms: {e}"))?,
                )
            }
            "--log-dir" => opts.log_dir = PathBuf::from(value("--log-dir")?),
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--node-bin" => node_bin = Some(PathBuf::from(value("--node-bin")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(path) = config_path {
        let file = ClusterFile::load(&path)?;
        opts.nodes = file.addrs.len();
        opts.addrs = Some(file.addrs);
        lease_us = lease_us.or(file.lease_us);
        opts.view_replicas = opts.view_replicas.or(file.view_replicas);
        if let Some(n) = nodes {
            if n != opts.nodes {
                return Err(format!(
                    "--nodes {n} conflicts with the {} [[node]] tables in {}",
                    opts.nodes,
                    path.display()
                ));
            }
        }
    } else if let Some(n) = nodes {
        opts.nodes = n;
    }
    if let Some(us) = lease_us {
        opts.lease_us = us;
    }
    opts.node_bin = match node_bin {
        Some(p) => p,
        None => {
            let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
            me.parent()
                .ok_or("current_exe has no parent directory")?
                .join("zeus-node")
        }
    };
    if let Some(victim) = opts.kill {
        if victim.index() >= opts.nodes {
            return Err(format!("--kill {} out of range", victim.0));
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("zeus-procs: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "zeus-procs: {} nodes, {} ops/node, kill={:?}, logs in {}",
        opts.nodes,
        opts.ops,
        opts.kill.map(|n| n.0),
        opts.log_dir.display()
    );
    match run_harness(&opts) {
        Ok(report) => {
            for (id, outcome) in {
                let mut v: Vec<_> = report.survivors.iter().collect();
                v.sort_by_key(|(id, _)| **id);
                v
            } {
                println!(
                    "node {id}: committed={} aborted={}",
                    outcome.committed, outcome.aborted
                );
            }
            if let Some(outcome) = report.restarted {
                println!(
                    "restarted node: committed={} aborted={}",
                    outcome.committed, outcome.aborted
                );
            }
            println!("zeus-procs: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("zeus-procs: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
