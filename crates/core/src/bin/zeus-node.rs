//! One Zeus node as an OS process, talking to its peers over UDP.
//!
//! ```text
//! zeus-node --id 0 --addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!           [--ops 200] [--accounts 64] [--lease-us 200000] \
//!           [--view-replicas 3] [--seed 42]
//! zeus-node --id 0 --config cluster.toml     # addrs/lease/view from file
//! ```
//!
//! Prints `READY` once bound, waits for `GO` on stdin, runs the seeded
//! transfer workload, prints `DONE committed=<n> aborted=<n>`, then keeps
//! serving as a cluster member until stdin closes. Typically launched by
//! `zeus-procs` (or the multiprocess CI job); see `zeus_core::procs`.

use std::process::ExitCode;

use zeus_core::procs::{run_node, NodeOpts};

fn main() -> ExitCode {
    let opts = match NodeOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("zeus-node: {e}");
            return ExitCode::from(2);
        }
    };
    match run_node(opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("zeus-node: {e}");
            ExitCode::FAILURE
        }
    }
}
