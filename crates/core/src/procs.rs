//! Process-per-node deployment: the `zeus-node` binary and the harness that
//! drives N of them as real OS processes.
//!
//! [`run_node`] is everything a `zeus-node` process does: bind a
//! [`UdpTransport`], run the shared [`crate::runtime`] node loop on it,
//! create the workload's objects, and execute a seeded transfer workload
//! through the same session API the in-process runtimes use. The process
//! speaks a tiny line protocol on stdio so a parent can orchestrate it:
//!
//! * it prints `READY` once the socket is bound and objects are created,
//! * it waits for `GO` on stdin before starting the workload (so all peers
//!   are up first),
//! * it prints `DONE committed=<n> aborted=<n>` when the workload finishes,
//! * it keeps serving (heartbeats, replication, ownership) until stdin
//!   closes — a finished node is still a cluster member.
//!
//! [`run_harness`] is the `zeus-procs` binary and the multiprocess CI job:
//! it spawns the processes, coordinates the line protocol, optionally
//! `kill -9`s one node mid-workload and restarts it on the same address
//! (the restarted process comes back with a fresh boot token and empty
//! state; the survivors' membership layer re-admits it), and asserts the
//! workload completed. Per-node logs land in a directory the CI job uploads
//! on failure.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::process::{Child, Command as ProcCommand, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use zeus_net::{RttConfig, UdpConfig, UdpTransport};
use zeus_proto::NodeId;

use crate::client::{RetryPolicy, Session};
use crate::cluster_config::NodeAddr;
use crate::config::ZeusConfig;
use crate::runtime::{node_loop, Command, ThreadedSession};
use crate::txn::TxError;
use crate::{ObjectId, ZeusNode};

// ---------------------------------------------------------------------------
// The node side (`zeus-node`)
// ---------------------------------------------------------------------------

/// Command-line options of one `zeus-node` process.
#[derive(Debug, Clone)]
pub struct NodeOpts {
    /// This node's id; `addrs[id]` must be its own address.
    pub id: NodeId,
    /// Every node's UDP address (literal or `host:port` DNS name, resolved
    /// at bind time), indexed by node id.
    pub addrs: Vec<NodeAddr>,
    /// Transfer operations this node executes once released with `GO`.
    pub ops: u64,
    /// Number of account objects (shared by all nodes; object `i` is homed
    /// on node `i % nodes`).
    pub accounts: u64,
    /// Failure-detection lease in microseconds.
    pub lease_us: u64,
    /// Size of the quorum view-replica set (the first N node ids); `None`
    /// keeps the [`ZeusConfig`] default.
    pub view_replicas: Option<usize>,
    /// Workload seed (each node decorrelates it with its id).
    pub seed: u64,
}

impl NodeOpts {
    /// Parses `--id N [--config cluster.toml] [--addrs a:p,b:p,...]
    /// [--ops N] [--accounts N] [--lease-us N] [--view-replicas N]
    /// [--seed N]`. The node list and cluster tunables may come from a
    /// [`crate::cluster_config::ClusterFile`]; explicit flags override file
    /// values.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<NodeOpts, String> {
        let mut id = None;
        let mut config_path: Option<std::path::PathBuf> = None;
        let mut addrs: Vec<NodeAddr> = Vec::new();
        let mut ops = 200u64;
        let mut accounts = 64u64;
        let mut lease_us: Option<u64> = None;
        let mut view_replicas: Option<usize> = None;
        let mut seed = 42u64;
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--id" => {
                    id = Some(
                        value("--id")?
                            .parse::<u16>()
                            .map_err(|e| format!("--id: {e}"))?,
                    )
                }
                "--config" => config_path = Some(PathBuf::from(value("--config")?)),
                "--addrs" => {
                    addrs = value("--addrs")?
                        .split(',')
                        .map(|a| NodeAddr::parse(a).map_err(|e| format!("--addrs: {e}")))
                        .collect::<Result<_, String>>()?;
                }
                "--ops" => ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
                "--accounts" => {
                    accounts = value("--accounts")?
                        .parse()
                        .map_err(|e| format!("--accounts: {e}"))?
                }
                "--lease-us" => {
                    lease_us = Some(
                        value("--lease-us")?
                            .parse()
                            .map_err(|e| format!("--lease-us: {e}"))?,
                    )
                }
                "--view-replicas" => {
                    view_replicas = Some(
                        value("--view-replicas")?
                            .parse()
                            .map_err(|e| format!("--view-replicas: {e}"))?,
                    )
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if let Some(path) = config_path {
            let file = crate::cluster_config::ClusterFile::load(&path)?;
            if addrs.is_empty() {
                addrs = file.addrs;
            }
            lease_us = lease_us.or(file.lease_us);
            view_replicas = view_replicas.or(file.view_replicas);
        }
        let id = id.ok_or("--id is required")?;
        if addrs.is_empty() {
            return Err("--addrs or --config is required".into());
        }
        if id as usize >= addrs.len() {
            return Err(format!("--id {id} out of range for {} addrs", addrs.len()));
        }
        Ok(NodeOpts {
            id: NodeId(id),
            addrs,
            ops,
            accounts,
            lease_us: lease_us.unwrap_or(200_000),
            view_replicas,
            seed,
        })
    }
}

/// xorshift64 — the same tiny deterministic generator the lossy socket
/// wrapper uses; good enough to pick accounts.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// How long one workload operation may retry before it counts as aborted.
/// Generous on purpose: an operation issued the instant a peer is
/// `kill -9`ed must survive failure detection (a lease of silence), the
/// view change and ownership recovery.
const OP_DEADLINE: Duration = Duration::from_secs(60);

/// Runs one Zeus node process end to end (see the module docs for the
/// stdio protocol). Returns the `(committed, aborted)` workload counts.
pub fn run_node(opts: NodeOpts) -> Result<(u64, u64), String> {
    let nodes = opts.addrs.len();
    let mut config = ZeusConfig::with_nodes(nodes);
    config.lease_ticks = opts.lease_us;
    if let Some(vr) = opts.view_replicas {
        config.view_replicas = vr;
    }

    // Resolve every peer (DNS names included) now, at bind/connect time:
    // the config may have been written on a machine with a different
    // name-to-address view than the one this process runs on.
    let peers: Vec<SocketAddr> = opts
        .addrs
        .iter()
        .map(NodeAddr::resolve)
        .collect::<Result<_, String>>()?;
    let transport = UdpTransport::bind(UdpConfig {
        local: opts.id,
        peers,
        rtt: RttConfig::udp_default(),
        loss: None,
    })
    .map_err(|e| format!("bind {}: {e}", opts.addrs[opts.id.index()]))?;

    let (cmd_tx, cmd_rx) = unbounded();
    let node_config = config.clone();
    let id = opts.id;
    let node_thread =
        std::thread::spawn(move || node_loop(ZeusNode::new(id, node_config), transport, cmd_rx));

    // Every process creates every object locally with the same deterministic
    // placement, so the cluster-wide directory agrees without coordination.
    for i in 0..opts.accounts {
        let owner = NodeId((i % nodes as u64) as u16);
        let _ = cmd_tx.send(Command::CreateObject {
            object: ObjectId(i),
            data: vec![0u8; 8].into(),
            replicas: config.default_replicas(owner),
        });
    }

    println!("READY");
    std::io::stdout().flush().ok();

    // Wait for the harness to release the workload; EOF means "serve only".
    let stdin = std::io::stdin();
    let mut released = false;
    let mut lines = stdin.lock().lines();
    for line in lines.by_ref() {
        match line {
            Ok(l) if l.trim() == "GO" => {
                released = true;
                break;
            }
            Ok(_) => continue,
            Err(e) => return Err(format!("stdin: {e}")),
        }
    }

    let (mut committed, mut aborted) = (0u64, 0u64);
    if released {
        let session = ThreadedSession::new(
            opts.id,
            cmd_tx.clone(),
            RetryPolicy::with_budget(config.max_ownership_retries),
        );
        let mut rng = opts.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(opts.id.0 as u64 + 1));
        for _ in 0..opts.ops {
            let from = ObjectId(next_rand(&mut rng) % opts.accounts);
            let to = ObjectId(next_rand(&mut rng) % opts.accounts);
            if transfer(&session, from, to) {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        let _ = session.drain();
        println!("DONE committed={committed} aborted={aborted}");
        std::io::stdout().flush().ok();

        // Stay a live member (replication target, ownership peer) until the
        // harness closes stdin.
        for line in lines {
            if line.is_err() {
                break;
            }
        }
    }

    let _ = cmd_tx.send(Command::Shutdown);
    let _ = node_thread.join();
    Ok((committed, aborted))
}

/// One transfer: move 1 unit between two 8-byte little-endian i64 balances.
/// Retries until [`OP_DEADLINE`]; `true` iff it committed.
fn transfer(session: &ThreadedSession, from: ObjectId, to: ObjectId) -> bool {
    let deadline = Instant::now() + OP_DEADLINE;
    loop {
        let result = session.write_txn(move |tx| {
            let adjust = |delta: i64| {
                move |old: &[u8]| {
                    let mut balance = [0u8; 8];
                    balance.copy_from_slice(&old[..8]);
                    (i64::from_le_bytes(balance) + delta).to_le_bytes().to_vec()
                }
            };
            if from == to {
                tx.update(from, adjust(0))?;
            } else {
                tx.update(from, adjust(-1))?;
                tx.update(to, adjust(1))?;
            }
            Ok(())
        });
        match result {
            Ok(()) => return true,
            Err(TxError::NodeUnavailable) => return false,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return false,
        }
    }
}

// ---------------------------------------------------------------------------
// The harness side (`zeus-procs` and the multiprocess CI job)
// ---------------------------------------------------------------------------

/// Options of a [`run_harness`] run.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Path of the `zeus-node` binary to spawn.
    pub node_bin: PathBuf,
    /// Cluster size.
    pub nodes: usize,
    /// Workload operations per node.
    pub ops: u64,
    /// Account objects shared by the cluster.
    pub accounts: u64,
    /// Failure-detection lease in microseconds.
    pub lease_us: u64,
    /// Size of the quorum view-replica set, forwarded to every node;
    /// `None` keeps the node-side default.
    pub view_replicas: Option<usize>,
    /// Fixed node addresses (e.g. from a `cluster.toml`, hostnames
    /// allowed); `None` allocates ephemeral loopback ports. When set, its
    /// length must equal `nodes`.
    pub addrs: Option<Vec<NodeAddr>>,
    /// Node to `kill -9` mid-workload and then restart on the same
    /// address; `None` runs the workload undisturbed.
    pub kill: Option<NodeId>,
    /// How long after releasing the workload the kill fires.
    pub kill_after: Duration,
    /// Directory receiving one `node-<i>.log` per process (stdout+stderr,
    /// restarts appended). Created if missing.
    pub log_dir: PathBuf,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            node_bin: PathBuf::from("zeus-node"),
            nodes: 3,
            ops: 150,
            accounts: 48,
            lease_us: 200_000,
            view_replicas: None,
            addrs: None,
            kill: None,
            kill_after: Duration::from_millis(300),
            log_dir: PathBuf::from("procs-logs"),
            seed: 42,
        }
    }
}

/// What one node process reported over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct NodeOutcome {
    /// Workload commits it printed in `DONE`.
    pub committed: u64,
    /// Workload aborts it printed in `DONE`.
    pub aborted: u64,
}

/// The result of a successful harness run.
#[derive(Debug, Clone, Default)]
pub struct HarnessReport {
    /// Outcome per surviving original process, by node id.
    pub survivors: HashMap<u16, NodeOutcome>,
    /// Outcome of the restarted process, if a kill was requested.
    pub restarted: Option<NodeOutcome>,
}

/// Stdout-derived state of one child, updated by its log-pump thread.
#[derive(Debug, Default)]
struct ChildStatus {
    ready: bool,
    done: Option<NodeOutcome>,
}

struct ChildProc {
    child: Child,
    stdin: Option<std::process::ChildStdin>,
    status: Arc<Mutex<ChildStatus>>,
}

fn spawn_node(opts: &HarnessOpts, id: u16, addrs: &str) -> Result<ChildProc, String> {
    let log_path = opts.log_dir.join(format!("node-{id}.log"));
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .map_err(|e| format!("open {}: {e}", log_path.display()))?;
    let stderr_log = log
        .try_clone()
        .map_err(|e| format!("clone log handle: {e}"))?;
    let mut cmd = ProcCommand::new(&opts.node_bin);
    cmd.arg("--id")
        .arg(id.to_string())
        .arg("--addrs")
        .arg(addrs)
        .arg("--ops")
        .arg(opts.ops.to_string())
        .arg("--accounts")
        .arg(opts.accounts.to_string())
        .arg("--lease-us")
        .arg(opts.lease_us.to_string())
        .arg("--seed")
        .arg(opts.seed.to_string());
    if let Some(vr) = opts.view_replicas {
        cmd.arg("--view-replicas").arg(vr.to_string());
    }
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::from(stderr_log))
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", opts.node_bin.display()))?;

    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let status = Arc::new(Mutex::new(ChildStatus::default()));
    let pump_status = status.clone();
    let mut pump_log = log;
    // Tee the child's stdout into its log file while parsing the READY /
    // DONE protocol lines.
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            let _ = writeln!(pump_log, "{line}");
            let mut status = pump_status.lock().unwrap();
            if line.trim() == "READY" {
                status.ready = true;
            } else if let Some(rest) = line.trim().strip_prefix("DONE ") {
                let mut outcome = NodeOutcome::default();
                for part in rest.split_whitespace() {
                    if let Some(v) = part.strip_prefix("committed=") {
                        outcome.committed = v.parse().unwrap_or(0);
                    } else if let Some(v) = part.strip_prefix("aborted=") {
                        outcome.aborted = v.parse().unwrap_or(0);
                    }
                }
                status.done = Some(outcome);
            }
        }
    });
    Ok(ChildProc {
        child,
        stdin,
        status,
    })
}

fn wait_ready(proc_: &ChildProc, id: u16, deadline: Duration) -> Result<(), String> {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if proc_.status.lock().unwrap().ready {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Err(format!("node {id} did not print READY within {deadline:?}"))
}

fn wait_done(proc_: &ChildProc, id: u16, deadline: Duration) -> Result<NodeOutcome, String> {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Some(outcome) = proc_.status.lock().unwrap().done.clone() {
            return Ok(outcome);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(format!("node {id} did not print DONE within {deadline:?}"))
}

/// Allocates `n` distinct loopback UDP ports by binding and releasing them.
/// (A released port can in principle be grabbed by another process before
/// the node binds it; on a CI runner the window is negligible.)
fn allocate_addrs(n: usize) -> Result<Vec<SocketAddr>, String> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()
        .map_err(|e| format!("allocate ports: {e}"))?;
    sockets
        .iter()
        .map(|s| s.local_addr().map_err(|e| format!("local_addr: {e}")))
        .collect()
}

/// Spawns an N-process cluster, runs the workload, optionally `kill -9`s a
/// node mid-run and restarts it, and verifies completion. See the module
/// docs for the full choreography. On failure the per-node logs in
/// `opts.log_dir` tell the story.
pub fn run_harness(opts: &HarnessOpts) -> Result<HarnessReport, String> {
    std::fs::create_dir_all(&opts.log_dir)
        .map_err(|e| format!("create {}: {e}", opts.log_dir.display()))?;
    let addrs = match &opts.addrs {
        Some(fixed) => {
            if fixed.len() != opts.nodes {
                return Err(format!(
                    "config lists {} nodes but --nodes is {}",
                    fixed.len(),
                    opts.nodes
                ));
            }
            fixed.clone()
        }
        None => allocate_addrs(opts.nodes)?
            .into_iter()
            .map(NodeAddr::from)
            .collect(),
    };
    let addrs_arg = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let mut procs: Vec<ChildProc> = Vec::new();
    for id in 0..opts.nodes as u16 {
        procs.push(spawn_node(opts, id, &addrs_arg)?);
    }
    let result = run_harness_inner(opts, &mut procs, &addrs_arg);
    for p in procs.iter_mut() {
        let _ = p.child.kill();
        let _ = p.child.wait();
    }
    result
}

fn run_harness_inner(
    opts: &HarnessOpts,
    procs: &mut [ChildProc],
    addrs_arg: &str,
) -> Result<HarnessReport, String> {
    for (id, p) in procs.iter().enumerate() {
        wait_ready(p, id as u16, Duration::from_secs(30))?;
    }
    // Release the workload everywhere only once every process is up.
    for p in procs.iter_mut() {
        if let Some(stdin) = p.stdin.as_mut() {
            writeln!(stdin, "GO").map_err(|e| format!("release workload: {e}"))?;
        }
    }

    let mut report = HarnessReport::default();
    if let Some(victim) = opts.kill {
        std::thread::sleep(opts.kill_after);
        let v = victim.index();
        // SIGKILL: no destructors, no goodbyes — the real crash the
        // membership layer exists for.
        procs[v]
            .child
            .kill()
            .map_err(|e| format!("kill node {victim:?}: {e}"))?;
        let _ = procs[v].child.wait();

        for (id, p) in procs.iter().enumerate() {
            if id == v {
                continue;
            }
            let outcome = wait_done(p, id as u16, Duration::from_secs(180))?;
            if outcome.committed + outcome.aborted != opts.ops {
                return Err(format!(
                    "survivor {id}: committed {} + aborted {} != ops {}",
                    outcome.committed, outcome.aborted, opts.ops
                ));
            }
            if outcome.committed == 0 {
                return Err(format!("survivor {id} committed nothing after the kill"));
            }
            report.survivors.insert(id as u16, outcome);
        }

        // Restart the victim on the same address: fresh process, fresh boot
        // token, empty state. The survivors must re-admit it and its own
        // workload must complete.
        let mut restarted = spawn_node(opts, victim.0, addrs_arg)?;
        wait_ready(&restarted, victim.0, Duration::from_secs(30))?;
        if let Some(stdin) = restarted.stdin.as_mut() {
            writeln!(stdin, "GO").map_err(|e| format!("release restarted node: {e}"))?;
        }
        let outcome = wait_done(&restarted, victim.0, Duration::from_secs(180))?;
        if outcome.committed + outcome.aborted != opts.ops {
            return Err(format!(
                "restarted node: committed {} + aborted {} != ops {}",
                outcome.committed, outcome.aborted, opts.ops
            ));
        }
        if outcome.committed == 0 {
            return Err("restarted node committed nothing — re-admission failed".into());
        }
        report.restarted = Some(outcome);
        procs[v] = restarted; // so the caller's cleanup tears it down too
    } else {
        for (id, p) in procs.iter().enumerate() {
            let outcome = wait_done(p, id as u16, Duration::from_secs(180))?;
            if outcome.committed + outcome.aborted != opts.ops {
                return Err(format!(
                    "node {id}: committed {} + aborted {} != ops {}",
                    outcome.committed, outcome.aborted, opts.ops
                ));
            }
            if outcome.aborted != 0 {
                return Err(format!(
                    "node {id} aborted {} ops on an undisturbed cluster",
                    outcome.aborted
                ));
            }
            report.survivors.insert(id as u16, outcome);
        }
    }

    // Close every stdin: the processes exit their serve loops.
    for p in procs.iter_mut() {
        p.stdin.take();
    }
    let until = Instant::now() + Duration::from_secs(20);
    for (id, p) in procs.iter_mut().enumerate() {
        loop {
            match p.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < until => std::thread::sleep(Duration::from_millis(20)),
                Ok(None) => return Err(format!("node {id} did not exit after stdin closed")),
                Err(e) => return Err(format!("wait node {id}: {e}")),
            }
        }
    }
    Ok(report)
}
