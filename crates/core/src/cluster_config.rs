//! Cluster configuration files for the process-per-node deployment.
//!
//! `zeus-node` and `zeus-procs` accept `--config cluster.toml` so a real
//! deployment describes itself once — node ids and addresses, the
//! view-replica count, the failure-detection lease — instead of repeating
//! an `--addrs` list on every command line. Explicit flags override file
//! values, so a config file plus `--lease-us 50000` runs the same cluster
//! with a shorter lease.
//!
//! The accepted format is the natural TOML subset (parsed by hand — the
//! deployment carries no TOML dependency):
//!
//! ```toml
//! # cluster.toml — a three-node cluster, all membership ops quorum-decided
//! [cluster]
//! view_replicas = 3        # first N node ids form the view-replica set
//! lease_us = 200000        # failure-detection lease, microseconds
//!
//! [[node]]
//! id = 0
//! addr = "127.0.0.1:7000"
//!
//! [[node]]
//! id = 1
//! addr = "127.0.0.1:7001"
//!
//! [[node]]
//! id = 2
//! addr = "127.0.0.1:7002"
//! ```
//!
//! `addr` accepts a literal `ip:port` or a DNS `host:port` name
//! (`node1.cluster.local:7000`); hostnames are resolved when the process
//! binds or connects, not at parse time (see [`NodeAddr`]).
//!
//! Node ids must be unique and contiguous from 0; the cluster size is the
//! number of `[[node]]` tables. Comments (`#`), blank lines and arbitrary
//! indentation are accepted; anything else — unknown keys, unknown
//! sections, non-integer ids — is a hard error, so a typo cannot silently
//! misconfigure membership.

use std::net::SocketAddr;
use std::path::Path;

/// A node address as written in a config file or an `--addrs` flag: either
/// a literal `ip:port` socket address or a `host:port` DNS name
/// (`node1.cluster.local:7000`, `localhost:7000`).
///
/// Hostnames are validated for shape at parse time but *resolved at
/// bind/connect time* via [`NodeAddr::resolve`]: a config can be written
/// once and shipped to machines whose name-to-address mapping differs or
/// churns between runs, and a typo'd port still fails fast at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAddr(String);

impl NodeAddr {
    /// Accepts a literal socket address or a `host:port` pair with a
    /// numeric port. No DNS query happens here.
    pub fn parse(s: &str) -> Result<NodeAddr, String> {
        if s.parse::<SocketAddr>().is_ok() {
            return Ok(NodeAddr(s.to_string()));
        }
        match s.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(NodeAddr(s.to_string()))
            }
            _ => Err(format!(
                "`{s}` is neither an ip:port nor a host:port address"
            )),
        }
    }

    /// The address as written.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Resolves to a concrete socket address: literals pass through, DNS
    /// names go through the system resolver (first result wins).
    pub fn resolve(&self) -> Result<SocketAddr, String> {
        if let Ok(addr) = self.0.parse() {
            return Ok(addr);
        }
        use std::net::ToSocketAddrs;
        self.0
            .to_socket_addrs()
            .map_err(|e| format!("resolve `{}`: {e}", self.0))?
            .next()
            .ok_or_else(|| format!("`{}` resolved to no addresses", self.0))
    }
}

impl From<SocketAddr> for NodeAddr {
    fn from(addr: SocketAddr) -> Self {
        NodeAddr(addr.to_string())
    }
}

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for NodeAddr {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NodeAddr::parse(s)
    }
}

/// A parsed cluster config file. All fields are optional except the node
/// table; callers merge them under their command-line flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFile {
    /// `[cluster] view_replicas` — size of the quorum view-replica set
    /// (the first N node ids).
    pub view_replicas: Option<usize>,
    /// `[cluster] lease_us` — failure-detection lease in microseconds.
    pub lease_us: Option<u64>,
    /// Every node's UDP address (literal or hostname), indexed by node id
    /// (dense from 0).
    pub addrs: Vec<NodeAddr>,
}

impl ClusterFile {
    /// Reads and parses `path`.
    pub fn load(path: &Path) -> Result<ClusterFile, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the config text (see the module docs for the format).
    pub fn parse(text: &str) -> Result<ClusterFile, String> {
        #[derive(PartialEq)]
        enum Section {
            Top,
            Cluster,
            Node,
        }
        let mut section = Section::Top;
        let mut view_replicas = None;
        let mut lease_us = None;
        // (line, id, addr) per [[node]] table, in file order.
        let mut nodes: Vec<(usize, Option<u16>, Option<NodeAddr>)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                section = match header.strip_suffix(']') {
                    Some("cluster") => Section::Cluster,
                    Some("[node]") => {
                        nodes.push((lineno, None, None));
                        Section::Node
                    }
                    _ => return Err(format!("line {lineno}: unknown section `{line}`")),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&section, key) {
                (Section::Cluster, "view_replicas") => {
                    view_replicas = Some(parse_int::<usize>(lineno, key, value)?);
                }
                (Section::Cluster, "lease_us") => {
                    lease_us = Some(parse_int::<u64>(lineno, key, value)?);
                }
                (Section::Node, "id") => {
                    let node = nodes.last_mut().expect("inside a [[node]] table");
                    node.1 = Some(parse_int::<u16>(lineno, key, value)?);
                }
                (Section::Node, "addr") => {
                    let unquoted = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {lineno}: addr must be a quoted string"))?;
                    let addr = NodeAddr::parse(unquoted)
                        .map_err(|e| format!("line {lineno}: addr: {e}"))?;
                    let node = nodes.last_mut().expect("inside a [[node]] table");
                    node.2 = Some(addr);
                }
                (Section::Top, _) => {
                    return Err(format!("line {lineno}: `{key}` outside any section"));
                }
                _ => return Err(format!("line {lineno}: unknown key `{key}`")),
            }
        }

        if nodes.is_empty() {
            return Err("no [[node]] tables".into());
        }
        let mut addrs: Vec<Option<NodeAddr>> = vec![None; nodes.len()];
        for (lineno, id, addr) in nodes {
            let id = id.ok_or(format!("[[node]] at line {lineno}: missing `id`"))?;
            let addr = addr.ok_or(format!("[[node]] at line {lineno}: missing `addr`"))?;
            let slot = addrs.get_mut(id as usize).ok_or(format!(
                "node id {id} out of range: ids must be contiguous from 0"
            ))?;
            if slot.is_some() {
                return Err(format!("duplicate node id {id}"));
            }
            *slot = Some(addr);
        }
        let addrs = addrs.into_iter().map(|a| a.expect("dense ids")).collect();
        Ok(ClusterFile {
            view_replicas,
            lease_us,
            addrs,
        })
    }
}

fn parse_int<T: std::str::FromStr>(lineno: usize, key: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse::<T>()
        .map_err(|e| format!("line {lineno}: {key} = `{value}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# cluster.toml
[cluster]
view_replicas = 3
lease_us = 200000   # microseconds

[[node]]
id = 0
addr = "127.0.0.1:7000"

[[node]]
id = 2
addr = "127.0.0.1:7002"

[[node]]
id = 1
addr = "127.0.0.1:7001"
"#;

    #[test]
    fn parses_the_documented_example() {
        let file = ClusterFile::parse(EXAMPLE).unwrap();
        assert_eq!(file.view_replicas, Some(3));
        assert_eq!(file.lease_us, Some(200_000));
        assert_eq!(
            file.addrs,
            vec![
                "127.0.0.1:7000".parse().unwrap(),
                "127.0.0.1:7001".parse().unwrap(),
                "127.0.0.1:7002".parse().unwrap(),
            ],
            "addrs indexed by id regardless of file order"
        );
    }

    #[test]
    fn accepts_and_resolves_hostnames() {
        let file = ClusterFile::parse(
            "[[node]]\nid = 0\naddr = \"localhost:7000\"\n[[node]]\nid = 1\naddr = \"127.0.0.1:7001\"",
        )
        .unwrap();
        assert_eq!(file.addrs[0].as_str(), "localhost:7000");
        // Resolution is deferred to bind/connect time; `localhost` is
        // resolvable everywhere.
        let resolved = file.addrs[0].resolve().unwrap();
        assert_eq!(resolved.port(), 7000);
        assert!(resolved.ip().is_loopback());
        // A literal resolves without touching the resolver.
        assert_eq!(
            file.addrs[1].resolve().unwrap(),
            "127.0.0.1:7001".parse::<SocketAddr>().unwrap()
        );
    }

    #[test]
    fn rejects_malformed_addresses() {
        for bad in ["no-port", "host:", ":7000", "host:notaport"] {
            assert!(NodeAddr::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        for good in ["localhost:7000", "node1.cluster.local:7000", "10.0.0.1:1"] {
            assert!(NodeAddr::parse(good).is_ok(), "`{good}` must parse");
        }
    }

    #[test]
    fn cluster_section_is_optional() {
        let file = ClusterFile::parse(
            "[[node]]\nid = 0\naddr = \"127.0.0.1:9000\"\n[[node]]\nid = 1\naddr = \"127.0.0.1:9001\"",
        )
        .unwrap();
        assert_eq!(file.view_replicas, None);
        assert_eq!(file.lease_us, None);
        assert_eq!(file.addrs.len(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        for (text, needle) in [
            ("", "no [[node]] tables"),
            ("[cluster]\nbogus = 1", "unknown key"),
            ("[weird]\n", "unknown section"),
            ("view_replicas = 3", "outside any section"),
            ("[[node]]\nid = 0", "missing `addr`"),
            ("[[node]]\naddr = \"127.0.0.1:1\"", "missing `id`"),
            ("[[node]]\nid = 0\naddr = 127.0.0.1:1", "quoted"),
            (
                "[[node]]\nid = 1\naddr = \"127.0.0.1:1\"",
                "contiguous from 0",
            ),
            (
                "[[node]]\nid = 0\naddr = \"127.0.0.1:1\"\n[[node]]\nid = 0\naddr = \"127.0.0.1:2\"",
                "duplicate node id",
            ),
        ] {
            let err = ClusterFile::parse(text).unwrap_err();
            assert!(
                err.contains(needle),
                "`{text}` should fail with `{needle}`, got `{err}`"
            );
        }
    }
}
