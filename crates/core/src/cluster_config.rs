//! Cluster configuration files for the process-per-node deployment.
//!
//! `zeus-node` and `zeus-procs` accept `--config cluster.toml` so a real
//! deployment describes itself once — node ids and addresses, the
//! view-replica count, the failure-detection lease — instead of repeating
//! an `--addrs` list on every command line. Explicit flags override file
//! values, so a config file plus `--lease-us 50000` runs the same cluster
//! with a shorter lease.
//!
//! The accepted format is the natural TOML subset (parsed by hand — the
//! deployment carries no TOML dependency):
//!
//! ```toml
//! # cluster.toml — a three-node cluster, all membership ops quorum-decided
//! [cluster]
//! view_replicas = 3        # first N node ids form the view-replica set
//! lease_us = 200000        # failure-detection lease, microseconds
//!
//! [[node]]
//! id = 0
//! addr = "127.0.0.1:7000"
//!
//! [[node]]
//! id = 1
//! addr = "127.0.0.1:7001"
//!
//! [[node]]
//! id = 2
//! addr = "127.0.0.1:7002"
//! ```
//!
//! Node ids must be unique and contiguous from 0; the cluster size is the
//! number of `[[node]]` tables. Comments (`#`), blank lines and arbitrary
//! indentation are accepted; anything else — unknown keys, unknown
//! sections, non-integer ids — is a hard error, so a typo cannot silently
//! misconfigure membership.

use std::net::SocketAddr;
use std::path::Path;

/// A parsed cluster config file. All fields are optional except the node
/// table; callers merge them under their command-line flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFile {
    /// `[cluster] view_replicas` — size of the quorum view-replica set
    /// (the first N node ids).
    pub view_replicas: Option<usize>,
    /// `[cluster] lease_us` — failure-detection lease in microseconds.
    pub lease_us: Option<u64>,
    /// Every node's UDP address, indexed by node id (dense from 0).
    pub addrs: Vec<SocketAddr>,
}

impl ClusterFile {
    /// Reads and parses `path`.
    pub fn load(path: &Path) -> Result<ClusterFile, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the config text (see the module docs for the format).
    pub fn parse(text: &str) -> Result<ClusterFile, String> {
        #[derive(PartialEq)]
        enum Section {
            Top,
            Cluster,
            Node,
        }
        let mut section = Section::Top;
        let mut view_replicas = None;
        let mut lease_us = None;
        // (line, id, addr) per [[node]] table, in file order.
        let mut nodes: Vec<(usize, Option<u16>, Option<SocketAddr>)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                section = match header.strip_suffix(']') {
                    Some("cluster") => Section::Cluster,
                    Some("[node]") => {
                        nodes.push((lineno, None, None));
                        Section::Node
                    }
                    _ => return Err(format!("line {lineno}: unknown section `{line}`")),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&section, key) {
                (Section::Cluster, "view_replicas") => {
                    view_replicas = Some(parse_int::<usize>(lineno, key, value)?);
                }
                (Section::Cluster, "lease_us") => {
                    lease_us = Some(parse_int::<u64>(lineno, key, value)?);
                }
                (Section::Node, "id") => {
                    let node = nodes.last_mut().expect("inside a [[node]] table");
                    node.1 = Some(parse_int::<u16>(lineno, key, value)?);
                }
                (Section::Node, "addr") => {
                    let unquoted = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {lineno}: addr must be a quoted string"))?;
                    let addr = unquoted
                        .parse()
                        .map_err(|e| format!("line {lineno}: addr `{unquoted}`: {e}"))?;
                    let node = nodes.last_mut().expect("inside a [[node]] table");
                    node.2 = Some(addr);
                }
                (Section::Top, _) => {
                    return Err(format!("line {lineno}: `{key}` outside any section"));
                }
                _ => return Err(format!("line {lineno}: unknown key `{key}`")),
            }
        }

        if nodes.is_empty() {
            return Err("no [[node]] tables".into());
        }
        let mut addrs: Vec<Option<SocketAddr>> = vec![None; nodes.len()];
        for (lineno, id, addr) in nodes {
            let id = id.ok_or(format!("[[node]] at line {lineno}: missing `id`"))?;
            let addr = addr.ok_or(format!("[[node]] at line {lineno}: missing `addr`"))?;
            let slot = addrs.get_mut(id as usize).ok_or(format!(
                "node id {id} out of range: ids must be contiguous from 0"
            ))?;
            if slot.is_some() {
                return Err(format!("duplicate node id {id}"));
            }
            *slot = Some(addr);
        }
        let addrs = addrs.into_iter().map(|a| a.expect("dense ids")).collect();
        Ok(ClusterFile {
            view_replicas,
            lease_us,
            addrs,
        })
    }
}

fn parse_int<T: std::str::FromStr>(lineno: usize, key: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse::<T>()
        .map_err(|e| format!("line {lineno}: {key} = `{value}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# cluster.toml
[cluster]
view_replicas = 3
lease_us = 200000   # microseconds

[[node]]
id = 0
addr = "127.0.0.1:7000"

[[node]]
id = 2
addr = "127.0.0.1:7002"

[[node]]
id = 1
addr = "127.0.0.1:7001"
"#;

    #[test]
    fn parses_the_documented_example() {
        let file = ClusterFile::parse(EXAMPLE).unwrap();
        assert_eq!(file.view_replicas, Some(3));
        assert_eq!(file.lease_us, Some(200_000));
        assert_eq!(
            file.addrs,
            vec![
                "127.0.0.1:7000".parse().unwrap(),
                "127.0.0.1:7001".parse().unwrap(),
                "127.0.0.1:7002".parse().unwrap(),
            ],
            "addrs indexed by id regardless of file order"
        );
    }

    #[test]
    fn cluster_section_is_optional() {
        let file = ClusterFile::parse(
            "[[node]]\nid = 0\naddr = \"127.0.0.1:9000\"\n[[node]]\nid = 1\naddr = \"127.0.0.1:9001\"",
        )
        .unwrap();
        assert_eq!(file.view_replicas, None);
        assert_eq!(file.lease_us, None);
        assert_eq!(file.addrs.len(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        for (text, needle) in [
            ("", "no [[node]] tables"),
            ("[cluster]\nbogus = 1", "unknown key"),
            ("[weird]\n", "unknown section"),
            ("view_replicas = 3", "outside any section"),
            ("[[node]]\nid = 0", "missing `addr`"),
            ("[[node]]\naddr = \"127.0.0.1:1\"", "missing `id`"),
            ("[[node]]\nid = 0\naddr = 127.0.0.1:1", "quoted"),
            (
                "[[node]]\nid = 1\naddr = \"127.0.0.1:1\"",
                "contiguous from 0",
            ),
            (
                "[[node]]\nid = 0\naddr = \"127.0.0.1:1\"\n[[node]]\nid = 0\naddr = \"127.0.0.1:2\"",
                "duplicate node id",
            ),
        ] {
            let err = ClusterFile::parse(text).unwrap_err();
            assert!(
                err.contains(needle),
                "`{text}` should fail with `{needle}`, got `{err}`"
            );
        }
    }
}
