//! Reliable-commit protocol counters.

/// Counters describing the reliable-commit traffic a node has processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Write transactions this node started reliable commits for
    /// (as coordinator).
    pub commits_started: u64,
    /// Reliable commits completed at this node (as coordinator).
    pub commits_completed: u64,
    /// R-INV messages applied as a follower.
    pub rinvs_applied: u64,
    /// R-INV messages buffered waiting for pipeline order.
    pub rinvs_buffered: u64,
    /// R-VAL messages applied as a follower.
    pub rvals_applied: u64,
    /// Pending reliable commits replayed during failure recovery.
    pub replays: u64,
    /// R-INV messages re-sent to unresponsive followers (reliable-transport
    /// retransmission, §3.1).
    pub rinvs_retransmitted: u64,
    /// R-VAL messages re-broadcast for already-cleared slots while later
    /// slots of the same pipeline were outstanding (the pipeline-order
    /// unwedge of the retransmission tick).
    pub rvals_retransmitted: u64,
    /// Times this node discarded its commit state after being re-admitted to
    /// the view (false suspicion or restart).
    pub rejoin_resets: u64,
}

impl CommitStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CommitStats) {
        self.commits_started += other.commits_started;
        self.commits_completed += other.commits_completed;
        self.rinvs_applied += other.rinvs_applied;
        self.rinvs_buffered += other.rinvs_buffered;
        self.rvals_applied += other.rvals_applied;
        self.replays += other.replays;
        self.rinvs_retransmitted += other.rinvs_retransmitted;
        self.rvals_retransmitted += other.rvals_retransmitted;
        self.rejoin_resets += other.rejoin_resets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = CommitStats::new();
        a.commits_started = 1;
        let mut b = CommitStats::new();
        b.commits_started = 2;
        b.replays = 3;
        a.merge(&b);
        assert_eq!(a.commits_started, 3);
        assert_eq!(a.replays, 3);
    }
}
