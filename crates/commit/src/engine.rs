//! The sans-io reliable-commit state machine.

use std::collections::{BTreeMap, HashMap, HashSet};

use zeus_proto::{CommitMsg, DataTs, Epoch, NodeId, ObjectId, ObjectUpdate, PipelineId, TxId};

use crate::pipeline::ClearedTracker;
use crate::stats::CommitStats;

/// Outputs of the commit engine, applied by the hosting runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitAction {
    /// Send a protocol message.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: CommitMsg,
    },
    /// Coordinator side: the transaction is now reliably committed (every
    /// follower acknowledged). The host validates the listed objects at the
    /// listed commit timestamps (`t_state := Valid`, pending count
    /// decremented).
    ReliablyCommitted {
        /// The committed transaction.
        tx_id: TxId,
        /// `(object, d_ts)` pairs to validate locally.
        objects: Vec<(ObjectId, DataTs)>,
    },
    /// Follower side: install these updates (newer data, `t_state :=
    /// Invalid`) in the local store.
    ApplyUpdates {
        /// The transaction the updates belong to.
        tx_id: TxId,
        /// Updated objects.
        updates: Vec<ObjectUpdate>,
    },
    /// Follower side: validate these objects at these commit timestamps
    /// (`t_state := Valid` iff the timestamp still matches).
    ValidateUpdates {
        /// The transaction being validated.
        tx_id: TxId,
        /// `(object, d_ts)` pairs to validate.
        objects: Vec<(ObjectId, DataTs)>,
    },
    /// Failure recovery for the current epoch has finished on this node (no
    /// pending reliable commits from dead coordinators remain). The host
    /// reports this to the membership service (§5.1).
    RecoveryFinished {
        /// The epoch whose recovery finished.
        epoch: Epoch,
    },
}

/// Coordinator-side record of an in-flight reliable commit (the locally
/// stored R-INV of §5.1).
#[derive(Debug, Clone)]
struct Outstanding {
    followers: Vec<NodeId>,
    /// Extra nodes to include in the R-VAL broadcast: followers of the next
    /// slot that were not followers of this one (§5.2).
    extra_val_targets: Vec<NodeId>,
    acks: HashSet<NodeId>,
    updates: Vec<ObjectUpdate>,
    prev_val: bool,
    /// True when this entry is a failure-recovery replay of another
    /// coordinator's commit (validation then happens via ValidateUpdates
    /// rather than ReliablyCommitted).
    is_replay: bool,
}

impl Outstanding {
    fn object_versions(&self) -> Vec<(ObjectId, DataTs)> {
        self.updates.iter().map(|u| (u.object, u.ts)).collect()
    }
}

/// Follower-side record of a stored (applied but not yet validated) R-INV.
#[derive(Debug, Clone)]
struct StoredRInv {
    followers: Vec<NodeId>,
    updates: Vec<ObjectUpdate>,
}

/// A buffered R-INV waiting for pipeline order.
#[derive(Debug, Clone)]
struct BufferedRInv {
    from: NodeId,
    followers: Vec<NodeId>,
    updates: Vec<ObjectUpdate>,
}

/// The per-node reliable-commit engine (coordinator and follower roles).
#[derive(Debug)]
pub struct CommitEngine {
    local: NodeId,
    epoch: Epoch,
    live: Vec<NodeId>,
    /// Next `local_tx_id` per worker thread of this node.
    next_local: HashMap<u16, u64>,
    /// Coordinator-side in-flight commits (own transactions and replays).
    outstanding: HashMap<TxId, Outstanding>,
    /// Follower-side stored R-INVs awaiting R-VAL.
    stored: HashMap<TxId, StoredRInv>,
    /// Follower-side cleared-slot tracking per pipeline.
    cleared: HashMap<PipelineId, ClearedTracker>,
    /// Follower-side R-INVs buffered for pipeline order.
    buffered: HashMap<PipelineId, BTreeMap<u64, BufferedRInv>>,
    /// Coordinator-side: the most recently completed (cleared) slot per
    /// pipeline and the targets its R-VAL went to. R-VALs are fire-once, so
    /// a lost one can wedge a follower that buffered the next slot waiting
    /// for pipeline order; re-broadcasting the last cleared slot's R-VAL on
    /// the retransmission tick (while later slots are still outstanding)
    /// unwedges it. Receivers treat duplicate R-VALs idempotently.
    last_cleared: HashMap<PipelineId, (u64, Vec<NodeId>)>,
    /// Set when a view change started a recovery that has not yet finished.
    recovering: bool,
    stats: CommitStats,
}

impl CommitEngine {
    /// Creates the engine for node `local` in a cluster of `cluster_size`
    /// nodes.
    pub fn new(local: NodeId, cluster_size: usize) -> Self {
        CommitEngine {
            local,
            epoch: Epoch::ZERO,
            live: (0..cluster_size as u16).map(NodeId).collect(),
            next_local: HashMap::new(),
            outstanding: HashMap::new(),
            stored: HashMap::new(),
            cleared: HashMap::new(),
            buffered: HashMap::new(),
            last_cleared: HashMap::new(),
            recovering: false,
            stats: CommitStats::new(),
        }
    }

    /// This node's id.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Protocol counters.
    pub fn stats(&self) -> &CommitStats {
        &self.stats
    }

    /// Number of reliable commits this node coordinates that are still in
    /// flight.
    pub fn outstanding_commits(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of R-INVs stored as a follower awaiting validation.
    pub fn stored_rinvs(&self) -> usize {
        self.stored.len()
    }

    /// Whether `object` appears in any commit this node is still propagating
    /// (the ownership protocol NACKs migrations of such objects, §4.1).
    pub fn object_has_pending_commit(&self, object: ObjectId) -> bool {
        self.outstanding
            .values()
            .any(|o| o.updates.iter().any(|u| u.object == object))
    }

    /// Discards commit state that may be stale after this node was expelled
    /// from the view and re-admitted.
    ///
    /// Outstanding coordinator-side commits are dropped: their epoch-stale
    /// R-INVs were never acknowledged and the cluster may have re-assigned
    /// ownership and committed conflicting versions in the meantime, so
    /// retransmitting them could resurrect dead writes (their loss is the
    /// documented crash-of-coordinator semantics). Follower-side stored and
    /// buffered R-INVs are dropped for the same reason — the host wipes the
    /// data store alongside this call. The per-pipeline cleared trackers and
    /// the local slot counters are deliberately kept: slots already seen by
    /// peers must never be reused or reprocessed.
    pub fn reset_for_rejoin(&mut self) {
        self.stats.rejoin_resets += 1;
        self.outstanding.clear();
        self.stored.clear();
        self.buffered.clear();
        self.last_cleared.clear();
    }

    /// Starts the reliable commit of a locally committed transaction executed
    /// by worker `thread`. `updates` are the modified objects with their new
    /// versions and data; `followers` are the reader replicas of those
    /// objects. Returns the transaction id and the actions to apply.
    pub fn begin_commit(
        &mut self,
        thread: u16,
        updates: Vec<ObjectUpdate>,
        followers: Vec<NodeId>,
    ) -> (TxId, Vec<CommitAction>) {
        let pipeline = PipelineId::new(self.local, thread);
        let local = self.next_local.entry(thread).or_insert(0);
        let tx_id = TxId::new(pipeline, *local);
        *local += 1;
        self.stats.commits_started += 1;

        let followers: Vec<NodeId> = followers
            .into_iter()
            .filter(|f| *f != self.local && self.live.contains(f))
            .collect();

        // Pipelining bookkeeping: is the previous slot already validated?
        let prev_val = match tx_id.prev() {
            None => true,
            Some(prev) => !self.outstanding.contains_key(&prev),
        };
        if !prev_val {
            let prev = tx_id.prev().expect("non-first slot has a predecessor");
            let extra: Vec<NodeId> = {
                let prev_entry = self.outstanding.get(&prev).expect("prev outstanding");
                followers
                    .iter()
                    .copied()
                    .filter(|f| !prev_entry.followers.contains(f))
                    .collect()
            };
            if let Some(prev_entry) = self.outstanding.get_mut(&prev) {
                for f in extra {
                    if !prev_entry.extra_val_targets.contains(&f) {
                        prev_entry.extra_val_targets.push(f);
                    }
                }
            }
        }

        if followers.is_empty() {
            // Replication degree 1 (or all replicas dead): the local commit
            // is immediately reliable.
            self.stats.commits_completed += 1;
            let objects = updates.iter().map(|u| (u.object, u.ts)).collect();
            return (
                tx_id,
                vec![CommitAction::ReliablyCommitted { tx_id, objects }],
            );
        }

        let entry = Outstanding {
            followers: followers.clone(),
            extra_val_targets: Vec::new(),
            acks: HashSet::new(),
            updates: updates.clone(),
            prev_val,
            is_replay: false,
        };
        self.outstanding.insert(tx_id, entry);

        let actions = followers
            .iter()
            .map(|&to| CommitAction::Send {
                to,
                msg: CommitMsg::RInv {
                    tx_id,
                    epoch: self.epoch,
                    followers: followers.clone(),
                    prev_val,
                    updates: updates.clone(),
                },
            })
            .collect();
        (tx_id, actions)
    }

    /// Handles an incoming protocol message.
    pub fn handle_message(&mut self, from: NodeId, msg: CommitMsg) -> Vec<CommitAction> {
        match msg {
            CommitMsg::RInv {
                tx_id,
                epoch,
                followers,
                prev_val,
                updates,
            } => self.on_rinv(from, tx_id, epoch, followers, prev_val, updates),
            CommitMsg::RAck {
                tx_id,
                from: acker,
                epoch,
            } => self.on_rack(tx_id, acker, epoch),
            CommitMsg::RVal { tx_id, epoch } => self.on_rval(tx_id, epoch),
        }
    }

    /// Installs a new membership view: bumps the epoch, prunes dead
    /// followers from in-flight commits and replays pending commits of dead
    /// coordinators (§5.1). Emits `RecoveryFinished` once nothing remains.
    ///
    /// `rejoined` nodes re-entered the view with wiped state: they are
    /// pruned from follower sets like dead nodes (they stopped being
    /// replicas), and commits *they* coordinated are replayed by their
    /// followers exactly like a dead coordinator's — the rejoined node
    /// dropped its outstanding set, so nobody else would ever validate
    /// them.
    pub fn on_view_change(
        &mut self,
        epoch: Epoch,
        live: Vec<NodeId>,
        rejoined: &[NodeId],
    ) -> Vec<CommitAction> {
        if epoch < self.epoch {
            return Vec::new();
        }
        self.epoch = epoch;
        self.live = live;
        self.recovering = true;
        let mut actions = Vec::new();
        let keeps = |f: &NodeId, live: &[NodeId]| live.contains(f) && !rejoined.contains(f);

        // 1. Coordinator side: drop dead followers and re-send our own
        //    pending R-INVs with the new epoch.
        let mut own: Vec<TxId> = self.outstanding.keys().copied().collect();
        own.sort_unstable();
        for tx_id in own {
            let (resend, completed) = {
                let entry = self.outstanding.get_mut(&tx_id).expect("outstanding");
                entry.followers.retain(|f| keeps(f, &self.live));
                entry.extra_val_targets.retain(|f| keeps(f, &self.live));
                entry.acks.retain(|f| keeps(f, &self.live));
                let completed = entry.followers.iter().all(|f| entry.acks.contains(f));
                let resend: Vec<CommitAction> = entry
                    .followers
                    .iter()
                    .filter(|f| !entry.acks.contains(f))
                    .map(|&to| CommitAction::Send {
                        to,
                        msg: CommitMsg::RInv {
                            tx_id,
                            epoch: self.epoch,
                            followers: entry.followers.clone(),
                            prev_val: entry.prev_val,
                            updates: entry.updates.clone(),
                        },
                    })
                    .collect();
                (resend, completed)
            };
            self.stats.replays += 1;
            if completed {
                actions.extend(self.complete_outstanding(tx_id));
            } else {
                actions.extend(resend);
            }
        }

        // 2. Follower side: replay stored R-INVs whose coordinator died (or
        //    rejoined with wiped state, which loses its outstanding set).
        let mut dead_coordinators: Vec<TxId> = self
            .stored
            .keys()
            .copied()
            .filter(|tx| {
                !self.live.contains(&tx.pipeline.node) || rejoined.contains(&tx.pipeline.node)
            })
            .collect();
        dead_coordinators.sort_unstable();
        for tx_id in dead_coordinators {
            let stored = self.stored.get(&tx_id).expect("stored").clone();
            self.stats.replays += 1;
            let followers: Vec<NodeId> = stored
                .followers
                .iter()
                .copied()
                .filter(|f| *f != self.local && keeps(f, &self.live))
                .collect();
            if followers.is_empty() {
                // We are the only surviving replica: validate immediately.
                actions.push(CommitAction::ValidateUpdates {
                    tx_id,
                    objects: stored.updates.iter().map(|u| (u.object, u.ts)).collect(),
                });
                self.stored.remove(&tx_id);
                continue;
            }
            let entry = Outstanding {
                followers: followers.clone(),
                extra_val_targets: Vec::new(),
                acks: HashSet::new(),
                updates: stored.updates.clone(),
                prev_val: true,
                is_replay: true,
            };
            self.outstanding.insert(tx_id, entry);
            for to in followers.iter().copied() {
                actions.push(CommitAction::Send {
                    to,
                    msg: CommitMsg::RInv {
                        tx_id,
                        epoch: self.epoch,
                        followers: followers.clone(),
                        prev_val: true,
                        updates: stored.updates.clone(),
                    },
                });
            }
        }

        actions.extend(self.check_recovery_finished());
        actions
    }

    /// Re-sends the R-INVs of every outstanding commit to the followers that
    /// have not acknowledged yet.
    ///
    /// The paper assumes a retransmitting reliable transport underneath the
    /// protocols (§3.1); this is that retransmission hook. The hosting
    /// runtime calls it periodically. Receivers treat duplicate R-INVs
    /// idempotently, so the interval only affects traffic, not safety. It
    /// also covers the epoch-transition race where an R-INV carrying the new
    /// epoch reaches a follower that has not installed the view yet (the
    /// follower drops it; without retransmission the commit would hang).
    pub fn retransmit(&mut self) -> Vec<CommitAction> {
        let mut actions = Vec::new();
        // Deterministic order: map iteration order must not influence the
        // message sequence (it would perturb the simulator's RNG stream).
        let mut tx_ids: Vec<TxId> = self.outstanding.keys().copied().collect();
        tx_ids.sort_unstable();
        for tx_id in tx_ids {
            let entry = &self.outstanding[&tx_id];
            // Recompute the prev-VAL bit: the previous slot may have
            // completed since this R-INV was first built, and a follower
            // that never saw that slot needs the refreshed bit to apply
            // this one in pipeline order.
            let prev_val = entry.prev_val
                || tx_id
                    .prev()
                    .is_none_or(|p| !self.outstanding.contains_key(&p));
            for &to in entry.followers.iter().filter(|f| !entry.acks.contains(f)) {
                actions.push(CommitAction::Send {
                    to,
                    msg: CommitMsg::RInv {
                        tx_id,
                        epoch: self.epoch,
                        followers: entry.followers.clone(),
                        prev_val,
                        updates: entry.updates.clone(),
                    },
                });
            }
        }
        self.stats.rinvs_retransmitted += actions.len() as u64;
        // Re-broadcast the last cleared slot's R-VAL for every pipeline that
        // still has later slots outstanding: a follower whose R-VAL for the
        // cleared slot was lost (and that buffered a later slot waiting for
        // pipeline order) would otherwise never ACK, pinning the owner in
        // PendingCommit NACKs forever.
        let mut pipelines: Vec<PipelineId> = self.last_cleared.keys().copied().collect();
        pipelines.sort_unstable();
        for pipeline in pipelines {
            let slot = self.last_cleared[&pipeline].0;
            let waiting = self
                .outstanding
                .keys()
                .any(|tx| tx.pipeline == pipeline && tx.local > slot);
            if !waiting {
                continue;
            }
            let targets = self.last_cleared[&pipeline].1.clone();
            self.stats.rvals_retransmitted += targets.len() as u64;
            for to in targets {
                actions.push(CommitAction::Send {
                    to,
                    msg: CommitMsg::RVal {
                        tx_id: TxId::new(pipeline, slot),
                        epoch: self.epoch,
                    },
                });
            }
        }
        actions
    }

    // ------------------------------------------------------------------
    // Follower side
    // ------------------------------------------------------------------

    fn on_rinv(
        &mut self,
        from: NodeId,
        tx_id: TxId,
        epoch: Epoch,
        followers: Vec<NodeId>,
        prev_val: bool,
        updates: Vec<ObjectUpdate>,
    ) -> Vec<CommitAction> {
        if epoch != self.epoch {
            return Vec::new();
        }
        // Already stored (duplicate or replay): just acknowledge (§5.1).
        if self.stored.contains_key(&tx_id) {
            return vec![self.rack(from, tx_id)];
        }
        // Already validated in the past: the cleared tracker knows; ack.
        if self
            .cleared
            .get(&tx_id.pipeline)
            .is_some_and(|t| t.is_cleared(tx_id.local))
        {
            return vec![self.rack(from, tx_id)];
        }

        let in_order = tx_id.local == 0
            || prev_val
            || self
                .cleared
                .get(&tx_id.pipeline)
                .is_some_and(|t| t.is_cleared(tx_id.local - 1));
        if !in_order {
            self.stats.rinvs_buffered += 1;
            self.buffered.entry(tx_id.pipeline).or_default().insert(
                tx_id.local,
                BufferedRInv {
                    from,
                    followers,
                    updates,
                },
            );
            return Vec::new();
        }

        let mut actions = self.apply_rinv(from, tx_id, followers, updates);
        actions.extend(self.drain_buffered(tx_id.pipeline));
        actions
    }

    fn apply_rinv(
        &mut self,
        from: NodeId,
        tx_id: TxId,
        followers: Vec<NodeId>,
        updates: Vec<ObjectUpdate>,
    ) -> Vec<CommitAction> {
        self.stats.rinvs_applied += 1;
        self.cleared
            .entry(tx_id.pipeline)
            .or_default()
            .mark(tx_id.local);
        self.stored.insert(
            tx_id,
            StoredRInv {
                followers,
                updates: updates.clone(),
            },
        );
        vec![
            CommitAction::ApplyUpdates { tx_id, updates },
            self.rack(from, tx_id),
        ]
    }

    fn drain_buffered(&mut self, pipeline: PipelineId) -> Vec<CommitAction> {
        let mut actions = Vec::new();
        loop {
            let next_ready = {
                let Some(buf) = self.buffered.get(&pipeline) else {
                    break;
                };
                let tracker = self.cleared.entry(pipeline).or_default();
                buf.keys()
                    .copied()
                    .find(|&slot| slot == 0 || tracker.is_cleared(slot - 1))
            };
            let Some(slot) = next_ready else { break };
            let item = self
                .buffered
                .get_mut(&pipeline)
                .and_then(|b| b.remove(&slot))
                .expect("buffered item exists");
            let tx_id = TxId::new(pipeline, slot);
            actions.extend(self.apply_rinv(item.from, tx_id, item.followers, item.updates));
        }
        actions
    }

    fn on_rval(&mut self, tx_id: TxId, epoch: Epoch) -> Vec<CommitAction> {
        if epoch != self.epoch {
            return Vec::new();
        }
        // R-VAL clears the slot even if we never saw its R-INV (partial
        // pipeline streams, §5.2).
        self.cleared
            .entry(tx_id.pipeline)
            .or_default()
            .mark(tx_id.local);
        let mut actions = Vec::new();
        if let Some(stored) = self.stored.remove(&tx_id) {
            self.stats.rvals_applied += 1;
            actions.push(CommitAction::ValidateUpdates {
                tx_id,
                objects: stored.updates.iter().map(|u| (u.object, u.ts)).collect(),
            });
        }
        actions.extend(self.drain_buffered(tx_id.pipeline));
        actions.extend(self.check_recovery_finished());
        actions
    }

    fn rack(&self, to: NodeId, tx_id: TxId) -> CommitAction {
        CommitAction::Send {
            to,
            msg: CommitMsg::RAck {
                tx_id,
                from: self.local,
                epoch: self.epoch,
            },
        }
    }

    // ------------------------------------------------------------------
    // Coordinator side
    // ------------------------------------------------------------------

    fn on_rack(&mut self, tx_id: TxId, acker: NodeId, epoch: Epoch) -> Vec<CommitAction> {
        if epoch != self.epoch {
            return Vec::new();
        }
        // R-ACKs are cumulative within a pipeline (§5.2): acknowledging slot
        // `n` implies every earlier slot from the same pipeline was received
        // and processed by that follower.
        let implied: Vec<TxId> = self
            .outstanding
            .keys()
            .copied()
            .filter(|t| t.pipeline == tx_id.pipeline && t.local <= tx_id.local)
            .collect();
        let mut completed = Vec::new();
        for t in implied {
            let entry = self.outstanding.get_mut(&t).expect("outstanding");
            if entry.followers.contains(&acker) {
                entry.acks.insert(acker);
            }
            if entry.followers.iter().all(|f| entry.acks.contains(f)) {
                completed.push(t);
            }
        }
        completed.sort();
        let mut actions = Vec::new();
        for t in completed {
            actions.extend(self.complete_outstanding(t));
        }
        actions
    }

    /// Finishes an outstanding commit: emit the local completion, broadcast
    /// R-VALs and discard the stored R-INV.
    fn complete_outstanding(&mut self, tx_id: TxId) -> Vec<CommitAction> {
        let Some(entry) = self.outstanding.remove(&tx_id) else {
            return Vec::new();
        };
        let mut actions = Vec::new();
        if entry.is_replay {
            // Validate our own (follower) copy of the replayed commit.
            self.stored.remove(&tx_id);
            self.cleared
                .entry(tx_id.pipeline)
                .or_default()
                .mark(tx_id.local);
            actions.push(CommitAction::ValidateUpdates {
                tx_id,
                objects: entry.object_versions(),
            });
        } else {
            self.stats.commits_completed += 1;
            actions.push(CommitAction::ReliablyCommitted {
                tx_id,
                objects: entry.object_versions(),
            });
        }
        let mut targets = entry.followers.clone();
        for extra in entry.extra_val_targets {
            if !targets.contains(&extra) {
                targets.push(extra);
            }
        }
        // Remember the cleared slot and its targets so the retransmission
        // tick can re-broadcast this R-VAL while later slots of the same
        // pipeline are still in flight (see `retransmit`).
        let remembered = self
            .last_cleared
            .entry(tx_id.pipeline)
            .or_insert((0, Vec::new()));
        if remembered.1.is_empty() || tx_id.local >= remembered.0 {
            *remembered = (tx_id.local, targets.clone());
        }
        for to in targets {
            actions.push(CommitAction::Send {
                to,
                msg: CommitMsg::RVal {
                    tx_id,
                    epoch: self.epoch,
                },
            });
        }
        actions.extend(self.check_recovery_finished());
        actions
    }

    // ------------------------------------------------------------------
    // Recovery bookkeeping
    // ------------------------------------------------------------------

    fn check_recovery_finished(&mut self) -> Vec<CommitAction> {
        if !self.recovering {
            return Vec::new();
        }
        let pending_replays = self.outstanding.values().any(|o| o.is_replay);
        let pending_dead_stored = self
            .stored
            .keys()
            .any(|tx| !self.live.contains(&tx.pipeline.node));
        if pending_replays || pending_dead_stored {
            return Vec::new();
        }
        self.recovering = false;
        vec![CommitAction::RecoveryFinished { epoch: self.epoch }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn upd(object: u64, version: u64) -> ObjectUpdate {
        ObjectUpdate::new(
            ObjectId(object),
            DataTs::new(version, zeus_proto::OwnershipTs::default()),
            Bytes::from(vec![version as u8; 16]),
        )
    }

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Routes messages between engines until quiescence, returning all
    /// non-Send actions per node.
    struct Cluster {
        engines: Vec<CommitEngine>,
        queue: std::collections::VecDeque<(NodeId, NodeId, CommitMsg)>,
        events: Vec<Vec<CommitAction>>,
        crashed: HashSet<NodeId>,
    }

    impl Cluster {
        fn new(size: usize) -> Self {
            Cluster {
                engines: (0..size as u16)
                    .map(|i| CommitEngine::new(NodeId(i), size))
                    .collect(),
                queue: Default::default(),
                events: vec![Vec::new(); size],
                crashed: HashSet::new(),
            }
        }

        fn apply(&mut self, node: NodeId, actions: Vec<CommitAction>) {
            for a in actions {
                match a {
                    CommitAction::Send { to, msg } => self.queue.push_back((to, node, msg)),
                    other => self.events[node.index()].push(other),
                }
            }
        }

        fn begin(
            &mut self,
            node: NodeId,
            thread: u16,
            updates: Vec<ObjectUpdate>,
            followers: Vec<NodeId>,
        ) -> TxId {
            let (tx, actions) = self.engines[node.index()].begin_commit(thread, updates, followers);
            self.apply(node, actions);
            tx
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((to, from, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 100_000, "commit protocol did not quiesce");
                if self.crashed.contains(&to) || self.crashed.contains(&from) {
                    continue;
                }
                let actions = self.engines[to.index()].handle_message(from, msg);
                self.apply(to, actions);
            }
        }

        fn committed(&self, node: NodeId) -> Vec<TxId> {
            self.events[node.index()]
                .iter()
                .filter_map(|a| match a {
                    CommitAction::ReliablyCommitted { tx_id, .. } => Some(*tx_id),
                    _ => None,
                })
                .collect()
        }

        fn validated(&self, node: NodeId) -> Vec<TxId> {
            self.events[node.index()]
                .iter()
                .filter_map(|a| match a {
                    CommitAction::ValidateUpdates { tx_id, .. } => Some(*tx_id),
                    _ => None,
                })
                .collect()
        }

        fn applied(&self, node: NodeId) -> Vec<TxId> {
            self.events[node.index()]
                .iter()
                .filter_map(|a| match a {
                    CommitAction::ApplyUpdates { tx_id, .. } => Some(*tx_id),
                    _ => None,
                })
                .collect()
        }

        fn view_change(&mut self) {
            let live: Vec<NodeId> = (0..self.engines.len() as u16)
                .map(NodeId)
                .filter(|x| !self.crashed.contains(x))
                .collect();
            let epoch = self.engines[live[0].index()].epoch().next();
            for node in live.clone() {
                let actions = self.engines[node.index()].on_view_change(epoch, live.clone(), &[]);
                self.apply(node, actions);
            }
        }
    }

    #[test]
    fn basic_commit_completes_with_single_round_trip_plus_val() {
        let mut c = Cluster::new(3);
        let tx = c.begin(n(0), 0, vec![upd(1, 1), upd(2, 1)], vec![n(1), n(2)]);
        c.run();
        assert_eq!(c.committed(n(0)), vec![tx]);
        assert_eq!(c.applied(n(1)), vec![tx]);
        assert_eq!(c.applied(n(2)), vec![tx]);
        assert_eq!(c.validated(n(1)), vec![tx]);
        assert_eq!(c.validated(n(2)), vec![tx]);
        assert_eq!(c.engines[0].outstanding_commits(), 0);
        assert_eq!(c.engines[1].stored_rinvs(), 0);
    }

    #[test]
    fn no_followers_commits_immediately() {
        let mut c = Cluster::new(1);
        let tx = c.begin(n(0), 0, vec![upd(1, 1)], vec![]);
        c.run();
        assert_eq!(c.committed(n(0)), vec![tx]);
    }

    #[test]
    fn pipelined_commits_are_applied_in_slot_order() {
        let mut c = Cluster::new(2);
        // Issue three pipelined commits before any R-ACK comes back.
        let t0 = c.begin(n(0), 0, vec![upd(1, 1)], vec![n(1)]);
        let t1 = c.begin(n(0), 0, vec![upd(1, 2)], vec![n(1)]);
        let t2 = c.begin(n(0), 0, vec![upd(2, 1)], vec![n(1)]);
        assert_eq!(c.engines[0].outstanding_commits(), 3);
        c.run();
        assert_eq!(c.committed(n(0)), vec![t0, t1, t2]);
        assert_eq!(c.applied(n(1)), vec![t0, t1, t2], "slot order respected");
    }

    #[test]
    fn out_of_order_rinv_is_buffered_until_predecessor() {
        let mut e = CommitEngine::new(n(1), 2);
        let p = PipelineId::new(n(0), 0);
        // Slot 1 arrives before slot 0 and without the prev-VAL bit.
        let a1 = e.handle_message(
            n(0),
            CommitMsg::RInv {
                tx_id: TxId::new(p, 1),
                epoch: Epoch::ZERO,
                followers: vec![n(1)],
                prev_val: false,
                updates: vec![upd(5, 2)],
            },
        );
        assert!(a1.is_empty(), "buffered, no ack yet");
        let a0 = e.handle_message(
            n(0),
            CommitMsg::RInv {
                tx_id: TxId::new(p, 0),
                epoch: Epoch::ZERO,
                followers: vec![n(1)],
                prev_val: false,
                updates: vec![upd(5, 1)],
            },
        );
        // Both slots now apply, in order.
        let applied: Vec<TxId> = a0
            .iter()
            .filter_map(|a| match a {
                CommitAction::ApplyUpdates { tx_id, .. } => Some(*tx_id),
                _ => None,
            })
            .collect();
        assert_eq!(applied, vec![TxId::new(p, 0), TxId::new(p, 1)]);
        assert_eq!(e.stats().rinvs_buffered, 1);
    }

    #[test]
    fn prev_val_bit_lets_partial_stream_follower_apply() {
        let mut e = CommitEngine::new(n(1), 2);
        let p = PipelineId::new(n(0), 0);
        let actions = e.handle_message(
            n(0),
            CommitMsg::RInv {
                tx_id: TxId::new(p, 7),
                epoch: Epoch::ZERO,
                followers: vec![n(1)],
                prev_val: true,
                updates: vec![upd(9, 3)],
            },
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, CommitAction::ApplyUpdates { .. })));
    }

    #[test]
    fn rval_for_unseen_slot_clears_the_pipeline_gap() {
        let mut e = CommitEngine::new(n(1), 3);
        let p = PipelineId::new(n(0), 0);
        // Slot 4 arrives, not in order and no prev-VAL: buffered.
        assert!(e
            .handle_message(
                n(0),
                CommitMsg::RInv {
                    tx_id: TxId::new(p, 4),
                    epoch: Epoch::ZERO,
                    followers: vec![n(1)],
                    prev_val: false,
                    updates: vec![upd(2, 2)],
                },
            )
            .is_empty());
        // The coordinator includes us in the R-VAL broadcast of slot 3.
        let actions = e.handle_message(
            n(0),
            CommitMsg::RVal {
                tx_id: TxId::new(p, 3),
                epoch: Epoch::ZERO,
            },
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, CommitAction::ApplyUpdates { tx_id, .. } if tx_id.local == 4)));
    }

    #[test]
    fn retransmission_unwedges_follower_buffered_behind_lost_rval() {
        // Coordinator n0 commits slot 0 (follower n1) and slot 1 (follower
        // n2). n2 buffers slot 1 (prev_val=false, never saw slot 0). Slot 0
        // completes via n1's ack, but the R-VAL broadcast does not reach n2
        // (it was not a target). Without the retransmission-tick R-VAL
        // re-broadcast, n2 would buffer slot 1 forever.
        let mut coord = CommitEngine::new(n(0), 3);
        let mut follower = CommitEngine::new(n(2), 3);
        let (t0, _a0) = coord.begin_commit(0, vec![upd(1, 1)], vec![n(1)]);
        let (t1, _a1) = coord.begin_commit(0, vec![upd(2, 1)], vec![n(2)]);
        // n2 receives slot 1 out of order: buffered, no ack.
        assert!(follower
            .handle_message(
                n(0),
                CommitMsg::RInv {
                    tx_id: t1,
                    epoch: Epoch::ZERO,
                    followers: vec![n(2)],
                    prev_val: false,
                    updates: vec![upd(2, 1)],
                },
            )
            .is_empty());
        // Slot 0 completes (n1 acked); its R-VAL targeted n1 only.
        let done = coord.handle_message(
            n(1),
            CommitMsg::RAck {
                tx_id: t0,
                from: n(1),
                epoch: Epoch::ZERO,
            },
        );
        assert!(done
            .iter()
            .any(|a| matches!(a, CommitAction::ReliablyCommitted { tx_id, .. } if *tx_id == t0)));
        assert_eq!(coord.outstanding_commits(), 1, "slot 1 still in flight");

        // The retransmission tick re-broadcasts slot 0's R-VAL (and slot 1's
        // R-INV with a refreshed prev-VAL bit); either unwedges n2.
        let retrans = coord.retransmit();
        let rval_slot0 = retrans.iter().find_map(|a| match a {
            CommitAction::Send {
                msg: msg @ CommitMsg::RVal { tx_id, .. },
                ..
            } if *tx_id == t0 => Some(msg.clone()),
            _ => None,
        });
        let rval_slot0 = rval_slot0.expect("cleared slot's R-VAL must be retransmitted");
        assert!(coord.stats().rvals_retransmitted >= 1);
        let refreshed_prev_val = retrans.iter().any(|a| {
            matches!(
                a,
                CommitAction::Send {
                    msg: CommitMsg::RInv {
                        tx_id,
                        prev_val: true,
                        ..
                    },
                    ..
                } if *tx_id == t1
            )
        });
        assert!(
            refreshed_prev_val,
            "retransmitted R-INV recomputes prev_val"
        );
        // Delivering the retransmitted R-VAL alone drains n2's buffer.
        let actions = follower.handle_message(n(0), rval_slot0);
        assert!(actions
            .iter()
            .any(|a| matches!(a, CommitAction::ApplyUpdates { tx_id, .. } if *tx_id == t1)));
        assert!(actions.iter().any(|a| matches!(
            a,
            CommitAction::Send {
                msg: CommitMsg::RAck { tx_id, .. },
                ..
            } if *tx_id == t1
        )));
    }

    #[test]
    fn duplicate_rinv_is_acked_but_not_reapplied() {
        let mut c = Cluster::new(2);
        let tx = c.begin(n(0), 0, vec![upd(1, 1)], vec![n(1)]);
        c.run();
        // Replay the same R-INV.
        let actions = c.engines[1].handle_message(
            n(0),
            CommitMsg::RInv {
                tx_id: tx,
                epoch: Epoch::ZERO,
                followers: vec![n(1)],
                prev_val: true,
                updates: vec![upd(1, 1)],
            },
        );
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            CommitAction::Send {
                msg: CommitMsg::RAck { .. },
                ..
            }
        ));
    }

    #[test]
    fn stale_epoch_messages_are_ignored() {
        let mut e = CommitEngine::new(n(1), 2);
        e.on_view_change(Epoch(3), vec![n(0), n(1)], &[]);
        let actions = e.handle_message(
            n(0),
            CommitMsg::RInv {
                tx_id: TxId::new(PipelineId::new(n(0), 0), 0),
                epoch: Epoch(1),
                followers: vec![n(1)],
                prev_val: true,
                updates: vec![upd(1, 1)],
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn coordinator_failure_is_replayed_by_follower() {
        let mut c = Cluster::new(3);
        let tx = c.begin(n(0), 0, vec![upd(7, 1)], vec![n(1), n(2)]);
        // Deliver the R-INVs but crash the coordinator before R-ACKs return,
        // so followers hold the data invalidated.
        // First deliver only R-INV messages:
        let mut rinvs = Vec::new();
        while let Some((to, from, msg)) = c.queue.pop_front() {
            if matches!(msg, CommitMsg::RInv { .. }) {
                rinvs.push((to, from, msg));
            }
        }
        for (to, from, msg) in rinvs {
            let actions = c.engines[to.index()].handle_message(from, msg);
            // Drop the resulting R-ACKs (coordinator is about to die).
            for a in actions {
                if let CommitAction::Send { .. } = a {
                    continue;
                }
                c.events[to.index()].push(a);
            }
        }
        assert_eq!(c.applied(n(1)), vec![tx]);
        assert!(c.validated(n(1)).is_empty(), "not yet validated");

        c.crashed.insert(n(0));
        c.view_change();
        c.run();
        // Both surviving followers validated the replayed transaction.
        assert_eq!(c.validated(n(1)), vec![tx]);
        assert_eq!(c.validated(n(2)), vec![tx]);
        // Recovery completes on both.
        for node in [n(1), n(2)] {
            assert!(
                c.events[node.index()]
                    .iter()
                    .any(|a| matches!(a, CommitAction::RecoveryFinished { .. })),
                "{node} must finish recovery"
            );
        }
    }

    #[test]
    fn follower_failure_lets_coordinator_finish_with_survivors() {
        let mut c = Cluster::new(3);
        let tx = c.begin(n(0), 0, vec![upd(3, 1)], vec![n(1), n(2)]);
        // Node 2 dies before receiving anything.
        c.crashed.insert(n(2));
        c.run();
        assert!(c.committed(n(0)).is_empty(), "missing ack from dead node");
        c.view_change();
        c.run();
        assert_eq!(c.committed(n(0)), vec![tx]);
        assert_eq!(c.validated(n(1)), vec![tx]);
    }

    #[test]
    fn pending_commit_visibility_for_ownership() {
        let mut c = Cluster::new(2);
        let _ = c.begin(n(0), 0, vec![upd(42, 1)], vec![n(1)]);
        assert!(c.engines[0].object_has_pending_commit(ObjectId(42)));
        assert!(!c.engines[0].object_has_pending_commit(ObjectId(43)));
        c.run();
        assert!(!c.engines[0].object_has_pending_commit(ObjectId(42)));
    }

    #[test]
    fn per_thread_pipelines_are_independent() {
        let mut c = Cluster::new(2);
        let t_a = c.begin(n(0), 0, vec![upd(1, 1)], vec![n(1)]);
        let t_b = c.begin(n(0), 1, vec![upd(2, 1)], vec![n(1)]);
        assert_eq!(t_a.pipeline.thread, 0);
        assert_eq!(t_b.pipeline.thread, 1);
        assert_eq!(t_a.local, 0);
        assert_eq!(t_b.local, 0, "each thread has its own slot counter");
        c.run();
        assert_eq!(c.committed(n(0)).len(), 2);
    }

    #[test]
    fn stats_reflect_activity() {
        let mut c = Cluster::new(2);
        c.begin(n(0), 0, vec![upd(1, 1)], vec![n(1)]);
        c.begin(n(0), 0, vec![upd(1, 2)], vec![n(1)]);
        c.run();
        assert_eq!(c.engines[0].stats().commits_started, 2);
        assert_eq!(c.engines[0].stats().commits_completed, 2);
        assert_eq!(c.engines[1].stats().rinvs_applied, 2);
        assert_eq!(c.engines[1].stats().rvals_applied, 2);
    }
}
