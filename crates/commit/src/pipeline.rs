//! Per-pipeline slot tracking on the follower side.

use std::collections::BTreeSet;

/// Tracks which slots of one pipeline a follower has *cleared* — i.e. has
/// either applied the slot's R-INV or received its R-VAL (§5.2).
///
/// A follower may observe only a partial stream of a pipeline (it is a
/// follower per transaction, not per pipeline), so cleared slots are not
/// necessarily contiguous. The tracker keeps a dense prefix plus a sparse
/// set above it, so memory stays proportional to the number of gaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClearedTracker {
    /// Every slot `< prefix` is cleared.
    prefix: u64,
    /// Cleared slots `>= prefix` (non-contiguous).
    sparse: BTreeSet<u64>,
}

impl ClearedTracker {
    /// Creates an empty tracker (no slot cleared).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `slot` as cleared.
    pub fn mark(&mut self, slot: u64) {
        if slot < self.prefix {
            return;
        }
        self.sparse.insert(slot);
        while self.sparse.remove(&self.prefix) {
            self.prefix += 1;
        }
    }

    /// Whether `slot` is cleared.
    pub fn is_cleared(&self, slot: u64) -> bool {
        slot < self.prefix || self.sparse.contains(&slot)
    }

    /// The dense cleared prefix (all slots below this are cleared).
    pub fn prefix(&self) -> u64 {
        self.prefix
    }

    /// Number of cleared slots tracked sparsely above the prefix.
    pub fn sparse_len(&self) -> usize {
        self.sparse.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_marks_advance_prefix() {
        let mut t = ClearedTracker::new();
        assert!(!t.is_cleared(0));
        t.mark(0);
        t.mark(1);
        t.mark(2);
        assert_eq!(t.prefix(), 3);
        assert_eq!(t.sparse_len(), 0);
        assert!(t.is_cleared(2));
        assert!(!t.is_cleared(3));
    }

    #[test]
    fn gaps_stay_sparse_until_filled() {
        let mut t = ClearedTracker::new();
        t.mark(0);
        t.mark(2);
        t.mark(4);
        assert_eq!(t.prefix(), 1);
        assert_eq!(t.sparse_len(), 2);
        assert!(t.is_cleared(2));
        assert!(!t.is_cleared(1));
        t.mark(1);
        assert_eq!(t.prefix(), 3);
        t.mark(3);
        assert_eq!(t.prefix(), 5);
        assert_eq!(t.sparse_len(), 0);
    }

    #[test]
    fn double_mark_is_idempotent() {
        let mut t = ClearedTracker::new();
        t.mark(0);
        t.mark(0);
        assert_eq!(t.prefix(), 1);
        t.mark(5);
        t.mark(5);
        assert_eq!(t.sparse_len(), 1);
    }
}
