//! The Zeus reliable-commit protocol (paper §5).
//!
//! After a write transaction commits locally at its coordinator (the owner of
//! every object it modified), the updates are propagated to the backup
//! replicas ("followers") with an invalidation-based scheme:
//!
//! 1. the coordinator broadcasts an idempotent **R-INV** carrying the new
//!    versions and data of every modified object,
//! 2. each follower installs the data, marks the objects `Invalid` and
//!    replies **R-ACK**,
//! 3. once every follower acknowledged, the coordinator commits reliably,
//!    validates its own copies and broadcasts **R-VAL**, upon which followers
//!    validate theirs.
//!
//! Because the owner has exclusive write access, an initiated reliable commit
//! can never be aborted by a remote participant — which is what makes the
//! protocol a single round-trip and lets the coordinator **pipeline**
//! subsequent transactions without waiting (§5.2). Followers apply R-INVs in
//! pipeline order (`local_tx_id`), using the piggybacked *prev-VAL* bit when
//! they receive only a partial stream of a pipeline. After a failure, any
//! participant can replay a stored R-INV; replays are idempotent (§5.1).
//!
//! [`engine::CommitEngine`] is a sans-io state machine driven by the same
//! runtimes (simulator / threads) as the ownership engine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod pipeline;
pub mod stats;

pub use engine::{CommitAction, CommitEngine};
pub use pipeline::ClearedTracker;
pub use stats::CommitStats;
