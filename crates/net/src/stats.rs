//! Message and byte accounting.

use std::collections::HashMap;

use zeus_proto::NodeId;

/// Counters describing the traffic a transport has carried.
///
/// The evaluation uses these to back the paper's bandwidth claims (Zeus
/// commits a transaction with one R-INV/R-ACK/R-VAL exchange per follower,
/// versus several round trips for distributed commit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages submitted for sending.
    pub messages_sent: u64,
    /// Total messages delivered to a destination.
    pub messages_delivered: u64,
    /// Total messages dropped by fault injection.
    pub messages_dropped: u64,
    /// Total messages duplicated by fault injection.
    pub messages_duplicated: u64,
    /// Total bytes submitted for sending (wire size).
    pub bytes_sent: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    /// High-water mark of any receiver inbox depth (messages queued but not
    /// yet drained). The threaded transport's channels are unbounded, so
    /// this is the backpressure signal the bench harness reports: a growing
    /// mark means a node loop is falling behind its peers.
    pub queue_depth_hwm: u64,
    /// Per-sender message counts.
    pub per_sender: HashMap<NodeId, u64>,
}

impl NetStats {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `from` submitted a message of `bytes` wire bytes.
    pub fn record_send(&mut self, from: NodeId, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.per_sender.entry(from).or_insert(0) += 1;
    }

    /// Records a delivered message of `bytes` wire bytes.
    pub fn record_delivery(&mut self, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Records a duplicated message.
    pub fn record_duplicate(&mut self) {
        self.messages_duplicated += 1;
    }

    /// Records an observed receiver-inbox depth, keeping the maximum.
    pub fn record_queue_depth(&mut self, depth: usize) {
        self.queue_depth_hwm = self.queue_depth_hwm.max(depth as u64);
    }

    /// Average wire bytes per sent message, or 0 if nothing was sent.
    pub fn avg_message_bytes(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Merges another counter set into this one (used to aggregate per-link
    /// stats into a cluster total).
    pub fn merge(&mut self, other: &NetStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_dropped += other.messages_dropped;
        self.messages_duplicated += other.messages_duplicated;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        for (node, count) in &other.per_sender {
            *self.per_sender.entry(*node).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        s.record_send(NodeId(0), 100);
        s.record_send(NodeId(0), 50);
        s.record_send(NodeId(1), 10);
        s.record_delivery(100);
        s.record_drop();
        s.record_duplicate();
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_duplicated, 1);
        assert_eq!(s.per_sender[&NodeId(0)], 2);
        assert!((s.avg_message_bytes() - 160.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_average_is_zero() {
        assert_eq!(NetStats::new().avg_message_bytes(), 0.0);
    }

    #[test]
    fn queue_depth_keeps_high_water_mark() {
        let mut s = NetStats::new();
        s.record_queue_depth(3);
        s.record_queue_depth(9);
        s.record_queue_depth(4);
        assert_eq!(s.queue_depth_hwm, 9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::new();
        a.record_send(NodeId(0), 10);
        a.record_queue_depth(2);
        let mut b = NetStats::new();
        b.record_send(NodeId(0), 20);
        b.record_send(NodeId(1), 5);
        b.record_delivery(20);
        b.record_queue_depth(7);
        a.merge(&b);
        assert_eq!(a.queue_depth_hwm, 7);
        assert_eq!(a.messages_sent, 3);
        assert_eq!(a.bytes_sent, 35);
        assert_eq!(a.messages_delivered, 1);
        assert_eq!(a.per_sender[&NodeId(0)], 2);
        assert_eq!(a.per_sender[&NodeId(1)], 1);
    }
}
