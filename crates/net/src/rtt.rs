//! Per-peer round-trip-time estimation and retransmission-timeout policy.
//!
//! The sans-io [`crate::reliable`] endpoint retransmits unacknowledged
//! messages after a timeout. A fixed timeout is either too aggressive (it
//! re-sends payloads the peer already has, amplifying congestion — the
//! failure mode behind the old hard-coded 1 ms threaded floor) or too slow
//! (loss recovery stalls for the whole fixed interval on fast links). This
//! module provides the adaptive alternative: the classic TCP estimator
//! (RFC 6298) — exponentially weighted means of the round-trip time and its
//! variance, an RTO of `srtt + 4·rttvar` clamped to a floor/ceiling, and
//! exponential backoff while timeouts repeat.
//!
//! All durations are in the caller's clock units; the runtimes in this
//! crate use microseconds.

/// Floor/ceiling/initial-value configuration for an [`RttEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttConfig {
    /// RTO used before the first RTT sample arrives.
    pub initial_rto: u64,
    /// Lower clamp for the computed RTO. Retransmitting faster than the
    /// floor amplifies transient scheduling hiccups into duplicate storms.
    pub min_rto: u64,
    /// Upper clamp for the computed RTO, also the cap for exponential
    /// backoff, so a long outage cannot push recovery arbitrarily far out.
    pub max_rto: u64,
}

impl RttConfig {
    /// Defaults for loopback/LAN UDP: first retransmit after 2 ms, never
    /// faster than 1 ms, backoff capped at 256 ms.
    pub fn udp_default() -> Self {
        RttConfig {
            initial_rto: 2_000,
            min_rto: 1_000,
            max_rto: 256_000,
        }
    }

    /// Defaults for the in-process channel transport. Channel "RTTs" are
    /// tens of microseconds, so the floor (1 ms, the value the old
    /// `THREADED_RETRANSMIT_TICKS` constant hard-coded for every link)
    /// dominates until real queueing delay pushes the estimate above it.
    pub fn inprocess_default() -> Self {
        RttConfig {
            initial_rto: 1_000,
            min_rto: 1_000,
            max_rto: 64_000,
        }
    }
}

/// Retransmission-timeout policy for a [`crate::reliable::ReliableEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtoPolicy {
    /// Retransmit after a fixed number of clock units, as the discrete-time
    /// simulator requires for determinism.
    Fixed(u64),
    /// Per-peer adaptive RTO driven by RTT samples (RFC 6298).
    Adaptive(RttConfig),
}

impl RtoPolicy {
    /// The timeout the policy yields before any samples exist.
    pub fn initial_rto(&self) -> u64 {
        match self {
            RtoPolicy::Fixed(t) => *t,
            RtoPolicy::Adaptive(c) => c.initial_rto,
        }
    }
}

/// RFC 6298 smoothed RTT estimator with exponential timeout backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    config: RttConfig,
    /// Smoothed RTT (`srtt`), `None` until the first sample.
    srtt: Option<u64>,
    /// Mean deviation (`rttvar`).
    rttvar: u64,
    /// Current RTO including any backoff in effect.
    rto: u64,
}

impl RttEstimator {
    /// Creates an estimator that reports `config.initial_rto` until the
    /// first sample arrives.
    pub fn new(config: RttConfig) -> Self {
        let rto = config.initial_rto.clamp(config.min_rto, config.max_rto);
        RttEstimator {
            config,
            srtt: None,
            rttvar: 0,
            rto,
        }
    }

    /// Folds one round-trip measurement into the estimate and clears any
    /// backoff. Samples must come from first transmissions only (Karn's
    /// algorithm): an ack for a retransmitted message is ambiguous.
    pub fn sample(&mut self, rtt: u64) {
        match self.srtt {
            None => {
                // First measurement: srtt = R, rttvar = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // rttvar = 3/4·rttvar + 1/4·|srtt − R|
                let dev = srtt.abs_diff(rtt);
                self.rttvar = (self.rttvar * 3 + dev) / 4;
                // srtt = 7/8·srtt + 1/8·R
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let raw = self
            .srtt
            .unwrap()
            .saturating_add(self.rttvar.saturating_mul(4));
        self.rto = raw.clamp(self.config.min_rto, self.config.max_rto);
    }

    /// Doubles the RTO (capped at the ceiling) after a retransmission
    /// timeout fired, so repeated losses back off instead of hammering.
    pub fn on_timeout(&mut self) {
        self.rto = self.rto.saturating_mul(2).min(self.config.max_rto);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> u64 {
        self.rto
    }

    /// The smoothed RTT, if at least one sample has been folded in.
    pub fn srtt(&self) -> Option<u64> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(initial: u64, min: u64, max: u64) -> RttConfig {
        RttConfig {
            initial_rto: initial,
            min_rto: min,
            max_rto: max,
        }
    }

    #[test]
    fn initial_rto_until_first_sample() {
        let est = RttEstimator::new(cfg(2_000, 1_000, 256_000));
        assert_eq!(est.rto(), 2_000);
        assert_eq!(est.srtt(), None);
    }

    #[test]
    fn first_sample_sets_srtt_and_variance() {
        let mut est = RttEstimator::new(cfg(2_000, 100, 256_000));
        est.sample(800);
        assert_eq!(est.srtt(), Some(800));
        // rttvar = 400, rto = 800 + 4·400 = 2400.
        assert_eq!(est.rto(), 2_400);
    }

    #[test]
    fn estimate_converges_toward_stable_rtt() {
        let mut est = RttEstimator::new(cfg(10_000, 100, 256_000));
        for _ in 0..64 {
            est.sample(500);
        }
        let srtt = est.srtt().unwrap();
        assert!((450..=550).contains(&srtt), "srtt {srtt} far from 500");
        // Variance decays toward 0, so the RTO settles near srtt (above the
        // floor, well below the ceiling).
        assert!(est.rto() < 1_500, "rto {} did not decay", est.rto());
    }

    #[test]
    fn rto_never_underflows_its_floor() {
        // The satellite guarantee: no stream of samples — not even
        // zero-RTT ones — may push the RTO below `min_rto`.
        let mut est = RttEstimator::new(cfg(2_000, 1_000, 256_000));
        for _ in 0..256 {
            est.sample(0);
        }
        assert_eq!(est.srtt(), Some(0));
        assert_eq!(est.rto(), 1_000);
        // An initial RTO below the floor is clamped up too.
        let est = RttEstimator::new(cfg(10, 1_000, 256_000));
        assert_eq!(est.rto(), 1_000);
    }

    #[test]
    fn timeout_backoff_doubles_and_caps_at_ceiling() {
        let mut est = RttEstimator::new(cfg(2_000, 1_000, 30_000));
        est.on_timeout();
        assert_eq!(est.rto(), 4_000);
        est.on_timeout();
        assert_eq!(est.rto(), 8_000);
        for _ in 0..10 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), 30_000, "backoff must cap at max_rto");
    }

    #[test]
    fn sample_after_backoff_collapses_rto() {
        let mut est = RttEstimator::new(cfg(2_000, 100, 256_000));
        for _ in 0..6 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), 128_000);
        // A fresh (non-retransmitted) sample recomputes the RTO from the
        // smoothed state, discarding the backoff multiplier.
        est.sample(400);
        assert_eq!(est.rto(), 400 + 4 * 200);
    }

    #[test]
    fn spiky_rtts_widen_the_rto() {
        let mut est = RttEstimator::new(cfg(2_000, 100, 256_000));
        for _ in 0..16 {
            est.sample(500);
        }
        let calm = est.rto();
        est.sample(8_000);
        assert!(est.rto() > calm * 2, "a spike must widen the rto");
    }
}
