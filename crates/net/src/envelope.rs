//! Message envelope: a payload plus its source, destination and wire size.

use zeus_proto::NodeId;

/// A message in flight between two nodes.
///
/// `wire_bytes` is the size the message would occupy on the wire (payload
/// plus a small fixed header); the simulator and the threaded transport use
/// it only for accounting, never for correctness.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// The payload.
    pub msg: M,
    /// Approximate on-the-wire size in bytes (payload + header).
    pub wire_bytes: usize,
}

/// Fixed per-message header overhead assumed for accounting (Ethernet + IP +
/// UDP-like header, as the paper's DPDK transport would add).
pub const HEADER_BYTES: usize = 42;

impl<M> Envelope<M> {
    /// Creates an envelope with an explicit payload size.
    pub fn with_payload_bytes(from: NodeId, to: NodeId, msg: M, payload_bytes: usize) -> Self {
        Envelope {
            from,
            to,
            msg,
            wire_bytes: payload_bytes + HEADER_BYTES,
        }
    }

    /// Maps the payload while keeping routing information and size.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope {
            from: self.from,
            to: self.to,
            msg: f(self.msg),
            wire_bytes: self.wire_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_payload_bytes_adds_header() {
        let e = Envelope::with_payload_bytes(NodeId(0), NodeId(1), "hi", 100);
        assert_eq!(e.wire_bytes, 100 + HEADER_BYTES);
    }

    #[test]
    fn map_preserves_routing_and_size() {
        let e = Envelope::with_payload_bytes(NodeId(0), NodeId(1), 5u32, 10);
        let f = e.map(|v| v * 2);
        assert_eq!(f.msg, 10);
        assert_eq!(f.from, NodeId(0));
        assert_eq!(f.to, NodeId(1));
        assert_eq!(f.wire_bytes, 10 + HEADER_BYTES);
    }
}
