//! Cluster transport substrate for the Zeus reproduction.
//!
//! The paper runs Zeus over a custom reliable messaging library built on DPDK
//! (§7). This crate provides the equivalent substrate for a single-box
//! reproduction:
//!
//! * [`sim::SimNetwork`] — a deterministic, seeded, discrete-time network
//!   simulator with configurable latency, message loss, duplication,
//!   reordering and node partitions. All protocol tests and the bounded
//!   model-checking harness run on top of it, so faulty executions are
//!   reproducible from a seed.
//! * [`reliable`] — a sequence-numbered, cumulative-ack, retransmitting
//!   link layer that turns the lossy simulated transport into the reliable,
//!   in-order channel the Zeus protocols assume (mirroring the paper's
//!   "reliable messaging protocol with low-level retransmission", §3.1).
//! * [`threaded::ThreadedNet`] — a crossbeam-channel transport with one
//!   mailbox per node, used by the throughput experiments where each node
//!   runs on its own OS thread.
//! * [`stats::NetStats`] — message and byte accounting used by the
//!   bandwidth-related claims of the evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod envelope;
pub mod reliable;
pub mod sim;
pub mod stats;
pub mod threaded;

pub use envelope::Envelope;
pub use reliable::{ReliableEndpoint, ReliableMsg};
pub use sim::{FaultPlan, LinkOverride, NetConfig, SimNetwork};
pub use stats::NetStats;
pub use threaded::{LinkFaults, NodeMailbox, ThreadedNet};
