//! Cluster transport substrate for the Zeus reproduction.
//!
//! The paper runs Zeus over a custom reliable messaging library built on DPDK
//! (§7). This crate provides the equivalent substrate, split along a strict
//! **sans-io / runtime** boundary:
//!
//! *Sans-io policy* — pure state machines, no sockets, no threads, no
//! clocks of their own; every test can drive them deterministically:
//!
//! * [`reliable`] — a sequence-numbered, cumulative-ack, retransmitting
//!   link layer that turns a lossy transport into the reliable, in-order
//!   channel the Zeus protocols assume (mirroring the paper's "reliable
//!   messaging protocol with low-level retransmission", §3.1). Callers feed
//!   it receives and clock ticks; it hands back wire envelopes to ship.
//! * [`rtt`] — per-peer RTT estimation (RFC 6298: EWMA of `srtt`/`rttvar`,
//!   RTO = `srtt + 4·rttvar` clamped to a floor/ceiling, exponential
//!   backoff on timeout) supplying the endpoint's [`rtt::RtoPolicy`].
//! * [`sim::SimNetwork`] — a deterministic, seeded, discrete-time network
//!   simulator with configurable latency, message loss, duplication,
//!   reordering and node partitions. All protocol tests and the bounded
//!   model-checking harness run on top of it, so faulty executions are
//!   reproducible from a seed.
//!
//! *Runtimes* — the I/O layers that drive the policy objects, all behind
//! the [`transport::Transport`] trait the `zeus-core` node loops consume:
//!
//! * [`threaded::ThreadedNet`] — a crossbeam-channel transport with one
//!   mailbox per node for single-process deployments. Channels are lossless
//!   and FIFO, so it skips the reliable layer entirely;
//!   [`transport::ProbedMailbox`] adds ping/pong probes whose samples turn
//!   inbox queueing delay into an adaptive protocol-retry interval.
//! * [`udp`] — one socket plus reader thread per node, framing envelopes
//!   onto datagrams and driving [`reliable::ReliableEndpoint`] with real
//!   wall-clock time: actual loss, actual reordering, actual processes
//!   (the `zeus-node` binary and the multiprocess CI job run on this).
//! * [`stats::NetStats`] — message and byte accounting used by the
//!   bandwidth-related claims of the evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod envelope;
pub mod reliable;
pub mod rtt;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod transport;
pub mod udp;

pub use envelope::Envelope;
pub use reliable::{ReliableEndpoint, ReliableMsg};
pub use rtt::{RtoPolicy, RttConfig, RttEstimator};
pub use sim::{FaultPlan, LinkOverride, NetConfig, SimNetwork};
pub use stats::NetStats;
pub use threaded::{LinkFaults, NodeMailbox, SharedCounters, ThreadedNet};
pub use transport::{LinkMsg, ProbedMailbox, Transport};
pub use udp::{LossyConfig, UdpConfig, UdpTransport};
