//! Threaded transport: one mailbox per node over crossbeam channels.
//!
//! Used by the throughput experiments, where each Zeus node runs on its own
//! OS thread. Channels are reliable and FIFO per sender/receiver pair, which
//! matches what the paper's reliable messaging layer provides to the
//! protocols, so no retransmission layer is needed here.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::stats::NetStats;

/// Shared table of injected link faults for the threaded transport.
///
/// The simulated transport models partitions inside its event queue; the
/// threaded transport needs an equivalent so fig11-style scenarios (isolate
/// a node mid-run, assert it fences itself, heal, assert recovery) can run
/// against real OS threads. Cuts are directed pairs checked at send time: a
/// cut message is counted as dropped, exactly like a send to a crashed
/// peer. Mailboxes consult the table on every send, so cuts take effect
/// immediately for traffic not yet handed to the channel.
#[derive(Debug, Default)]
pub struct LinkFaults {
    /// Directed `(from, to)` pairs whose traffic is dropped.
    cut: RwLock<HashSet<(NodeId, NodeId)>>,
}

impl LinkFaults {
    /// Cuts both directions between `a` and `b`.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut cut = self.cut.write();
        cut.insert((a, b));
        cut.insert((b, a));
    }

    /// Heals both directions between `a` and `b`.
    pub fn heal_partition(&self, a: NodeId, b: NodeId) {
        let mut cut = self.cut.write();
        cut.remove(&(a, b));
        cut.remove(&(b, a));
    }

    /// Heals every injected cut.
    pub fn heal_all(&self) {
        self.cut.write().clear();
    }

    /// Whether traffic `from → to` is currently cut.
    pub fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        self.cut.read().contains(&(from, to))
    }
}

/// Shared atomic traffic counters for the threaded transport.
#[derive(Debug, Default)]
pub struct SharedCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    /// Deepest receiver inbox observed at send time. The channels are
    /// unbounded, so this is the only backpressure signal: it tells the
    /// bench harness how far the slowest node loop fell behind.
    queue_hwm: AtomicU64,
    /// Sends that failed (closed inbox / unknown peer); subtracted from the
    /// delivered counters so traffic into the void is not reported as
    /// delivered.
    dropped_messages: AtomicU64,
    dropped_bytes: AtomicU64,
}

impl SharedCounters {
    pub(crate) fn record(&self, bytes: usize, queue_depth: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.queue_hwm
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    /// Adds delivered bytes without touching message counts (batched sends
    /// count messages per envelope but bytes per bucket).
    pub(crate) fn record_bytes(&self, bytes: usize) {
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a send that never reached an inbox (unknown peer, or the
    /// destination's node thread exited and closed its channel).
    pub(crate) fn record_failed(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.dropped_messages.fetch_add(1, Ordering::Relaxed);
        self.dropped_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters as [`NetStats`]: delivered = sent minus the
    /// sends that failed (closed inbox / unknown peer).
    pub fn snapshot(&self) -> NetStats {
        let mut s = NetStats::new();
        s.messages_sent = self.messages.load(Ordering::Relaxed);
        s.bytes_sent = self.bytes.load(Ordering::Relaxed);
        s.messages_dropped = self.dropped_messages.load(Ordering::Relaxed);
        s.messages_delivered = s.messages_sent - s.messages_dropped;
        s.bytes_delivered = s.bytes_sent - self.dropped_bytes.load(Ordering::Relaxed);
        s.queue_depth_hwm = self.queue_hwm.load(Ordering::Relaxed);
        s
    }
}

/// A node's connection to the threaded network: its inbox plus senders to
/// every peer. Cloneable so multiple worker threads of one node can send.
#[derive(Debug)]
pub struct NodeMailbox<M> {
    /// This node's id.
    pub id: NodeId,
    inbox: Receiver<Envelope<M>>,
    peers: Vec<Sender<Envelope<M>>>,
    counters: Arc<SharedCounters>,
    faults: Arc<LinkFaults>,
}

impl<M> Clone for NodeMailbox<M> {
    fn clone(&self) -> Self {
        NodeMailbox {
            id: self.id,
            inbox: self.inbox.clone(),
            peers: self.peers.clone(),
            counters: Arc::clone(&self.counters),
            faults: Arc::clone(&self.faults),
        }
    }
}

impl<M> NodeMailbox<M> {
    /// Sends `msg` of approximate `payload_bytes` size to `to`.
    ///
    /// Returns `false` if the destination's inbox has been closed (its node
    /// thread exited), which callers treat like a crashed peer.
    pub fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool {
        let env = Envelope::with_payload_bytes(self.id, to, msg, payload_bytes);
        let wire_bytes = env.wire_bytes;
        // Injected link faults (fig11-style partitions): a cut link drops
        // the message at send time, exactly like a send to a crashed peer.
        if self.faults.is_cut(self.id, to) {
            self.counters.record_failed(wire_bytes);
            return false;
        }
        match self.peers.get(to.index()) {
            Some(tx) => {
                // `send_counting` reports the depth right after the push
                // under the send's own lock, so the high-water mark counts
                // this message even if the receiver drains it instantly —
                // without a second lock acquisition per send.
                match tx.send_counting(env) {
                    Ok(depth) => {
                        self.counters.record(wire_bytes, depth);
                        true
                    }
                    Err(_) => {
                        self.counters.record_failed(wire_bytes);
                        false
                    }
                }
            }
            None => {
                self.counters.record_failed(wire_bytes);
                false
            }
        }
    }

    /// Sends a whole outbox flush, grouping messages by destination so each
    /// destination's channel is locked once per batch instead of once per
    /// message. `msgs` carries `(to, msg, payload_bytes)` triples in send
    /// order; per-destination FIFO order is preserved. Counter and
    /// link-fault semantics match per-message [`NodeMailbox::send`]: cut or
    /// undeliverable messages are recorded as dropped, and the queue-depth
    /// high-water mark observes the depth after each destination's batch.
    pub fn send_batch(&self, msgs: Vec<(NodeId, M, usize)>) {
        if msgs.is_empty() {
            return;
        }
        // Group by destination while preserving order. Destinations per
        // batch are few (cluster peers), so a linear bucket scan beats a
        // hash map here.
        let mut buckets: Vec<(NodeId, Vec<Envelope<M>>, usize)> = Vec::new();
        for (to, msg, payload_bytes) in msgs {
            let env = Envelope::with_payload_bytes(self.id, to, msg, payload_bytes);
            let wire_bytes = env.wire_bytes;
            if self.faults.is_cut(self.id, to) || self.peers.get(to.index()).is_none() {
                self.counters.record_failed(wire_bytes);
                continue;
            }
            match buckets.iter_mut().find(|(dest, _, _)| *dest == to) {
                Some((_, bucket, bytes)) => {
                    bucket.push(env);
                    *bytes += wire_bytes;
                }
                None => buckets.push((to, vec![env], wire_bytes)),
            }
        }
        for (to, bucket, bytes) in buckets {
            let count = bucket.len();
            let tx = &self.peers[to.index()];
            match tx.send_batch(bucket) {
                Ok(depth) => {
                    for _ in 0..count {
                        self.counters.record(0, depth);
                    }
                    // Bytes are recorded once per bucket; the per-message
                    // calls above only bump message counts and the hwm.
                    self.counters.record_bytes(bytes);
                }
                Err(_) => {
                    self.counters.record_failed(bytes);
                    // One failed flush counts each undelivered message.
                    for _ in 1..count {
                        self.counters.record_failed(0);
                    }
                }
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.inbox.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains up to `max` queued envelopes into `buf` with a single channel
    /// lock acquisition, returning how many were moved. The batched
    /// counterpart of [`NodeMailbox::try_recv`] used by the node event
    /// loops: one lock round-trip per *batch* instead of per message.
    pub fn drain_into(&self, buf: &mut Vec<Envelope<M>>, max: usize) -> usize {
        self.inbox.drain_into(buf, max)
    }

    /// Blocking receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

/// The threaded cluster transport: constructs one mailbox per node.
#[derive(Debug)]
pub struct ThreadedNet<M> {
    mailboxes: Vec<NodeMailbox<M>>,
    counters: Arc<SharedCounters>,
    faults: Arc<LinkFaults>,
}

impl<M> ThreadedNet<M> {
    /// Creates a fully connected transport for `n` nodes with ids `0..n`.
    pub fn new(n: usize) -> Self {
        let counters = Arc::new(SharedCounters::default());
        let faults = Arc::new(LinkFaults::default());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mailboxes = receivers
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| NodeMailbox {
                id: NodeId(i as u16),
                inbox,
                peers: senders.clone(),
                counters: Arc::clone(&counters),
                faults: Arc::clone(&faults),
            })
            .collect();
        ThreadedNet {
            mailboxes,
            counters,
            faults,
        }
    }

    /// The shared link-fault table: cuts injected here take effect for every
    /// mailbox of this transport immediately.
    pub fn faults(&self) -> &Arc<LinkFaults> {
        &self.faults
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.mailboxes.len()
    }

    /// Whether the transport has no nodes.
    pub fn is_empty(&self) -> bool {
        self.mailboxes.is_empty()
    }

    /// Takes the mailbox of node `id` (each mailbox is handed to its node
    /// thread exactly once; it can be cloned afterwards).
    pub fn mailbox(&self, id: NodeId) -> NodeMailbox<M> {
        self.mailboxes[id.index()].clone()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn messages_route_to_destination() {
        let net: ThreadedNet<u32> = ThreadedNet::new(3);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        let c = net.mailbox(NodeId(2));
        assert!(a.send(NodeId(1), 7, 4));
        assert!(a.send(NodeId(2), 9, 4));
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().msg, 9);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn send_to_unknown_node_fails() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        assert!(!a.send(NodeId(9), 1, 4));
        // A failed send counts as dropped, not delivered.
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 1);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.bytes_delivered, 0);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        a.send(NodeId(1), 1, 100);
        a.send(NodeId(1), 2, 50);
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert!(stats.bytes_sent >= 150);
    }

    #[test]
    fn cross_thread_delivery_works() {
        let net: ThreadedNet<u64> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        let handle = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..100 {
                if let Some(env) = b.recv_timeout(Duration::from_secs(2)) {
                    sum += env.msg;
                }
            }
            sum
        });
        for i in 1..=100u64 {
            a.send(NodeId(1), i, 8);
        }
        assert_eq!(handle.join().unwrap(), 5050);
    }

    #[test]
    fn drain_into_batches_the_inbox() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        for i in 0..6 {
            a.send(NodeId(1), i, 4);
        }
        let mut buf = Vec::new();
        assert_eq!(b.drain_into(&mut buf, 4), 4);
        assert_eq!(b.drain_into(&mut buf, 4), 2);
        let values: Vec<u32> = buf.iter().map(|e| e.msg).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn send_batch_matches_per_message_semantics() {
        let net: ThreadedNet<u32> = ThreadedNet::new(3);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        let c = net.mailbox(NodeId(2));
        net.faults().partition(NodeId(0), NodeId(2));
        a.send_batch(vec![
            (NodeId(1), 1, 4),
            (NodeId(2), 2, 4), // cut link: dropped
            (NodeId(1), 3, 4),
            (NodeId(9), 4, 4), // unknown peer: dropped
        ]);
        let mut buf = Vec::new();
        b.drain_into(&mut buf, 10);
        let values: Vec<u32> = buf.iter().map(|e| e.msg).collect();
        assert_eq!(values, vec![1, 3], "per-destination FIFO preserved");
        assert!(c.try_recv().is_none());
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 4);
        assert_eq!(stats.messages_dropped, 2);
        assert_eq!(stats.messages_delivered, 2);
        assert!(stats.queue_depth_hwm >= 2);
    }

    #[test]
    fn queue_depth_high_water_mark_sticks() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        for i in 0..5 {
            a.send(NodeId(1), i, 4);
        }
        assert!(net.stats().queue_depth_hwm >= 5);
        while b.try_recv().is_some() {}
        a.send(NodeId(1), 9, 4);
        // Draining the inbox must not reset the high-water mark.
        assert!(net.stats().queue_depth_hwm >= 5);
    }

    #[test]
    fn pending_reports_queue_depth() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        for i in 0..5 {
            a.send(NodeId(1), i, 4);
        }
        assert_eq!(b.pending(), 5);
    }
}
