//! Threaded transport: one mailbox per node over crossbeam channels.
//!
//! Used by the throughput experiments, where each Zeus node runs on its own
//! OS thread. Channels are reliable and FIFO per sender/receiver pair, which
//! matches what the paper's reliable messaging layer provides to the
//! protocols, so no retransmission layer is needed here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::stats::NetStats;

/// Shared atomic traffic counters for the threaded transport.
#[derive(Debug, Default)]
pub struct SharedCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl SharedCounters {
    fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters as [`NetStats`].
    pub fn snapshot(&self) -> NetStats {
        let mut s = NetStats::new();
        s.messages_sent = self.messages.load(Ordering::Relaxed);
        s.messages_delivered = s.messages_sent;
        s.bytes_sent = self.bytes.load(Ordering::Relaxed);
        s.bytes_delivered = s.bytes_sent;
        s
    }
}

/// A node's connection to the threaded network: its inbox plus senders to
/// every peer. Cloneable so multiple worker threads of one node can send.
#[derive(Debug)]
pub struct NodeMailbox<M> {
    /// This node's id.
    pub id: NodeId,
    inbox: Receiver<Envelope<M>>,
    peers: Vec<Sender<Envelope<M>>>,
    counters: Arc<SharedCounters>,
}

impl<M> Clone for NodeMailbox<M> {
    fn clone(&self) -> Self {
        NodeMailbox {
            id: self.id,
            inbox: self.inbox.clone(),
            peers: self.peers.clone(),
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<M> NodeMailbox<M> {
    /// Sends `msg` of approximate `payload_bytes` size to `to`.
    ///
    /// Returns `false` if the destination's inbox has been closed (its node
    /// thread exited), which callers treat like a crashed peer.
    pub fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool {
        let env = Envelope::with_payload_bytes(self.id, to, msg, payload_bytes);
        self.counters.record(env.wire_bytes);
        match self.peers.get(to.index()) {
            Some(tx) => tx.send(env).is_ok(),
            None => false,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.inbox.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

/// The threaded cluster transport: constructs one mailbox per node.
#[derive(Debug)]
pub struct ThreadedNet<M> {
    mailboxes: Vec<NodeMailbox<M>>,
    counters: Arc<SharedCounters>,
}

impl<M> ThreadedNet<M> {
    /// Creates a fully connected transport for `n` nodes with ids `0..n`.
    pub fn new(n: usize) -> Self {
        let counters = Arc::new(SharedCounters::default());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mailboxes = receivers
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| NodeMailbox {
                id: NodeId(i as u16),
                inbox,
                peers: senders.clone(),
                counters: Arc::clone(&counters),
            })
            .collect();
        ThreadedNet {
            mailboxes,
            counters,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.mailboxes.len()
    }

    /// Whether the transport has no nodes.
    pub fn is_empty(&self) -> bool {
        self.mailboxes.is_empty()
    }

    /// Takes the mailbox of node `id` (each mailbox is handed to its node
    /// thread exactly once; it can be cloned afterwards).
    pub fn mailbox(&self, id: NodeId) -> NodeMailbox<M> {
        self.mailboxes[id.index()].clone()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn messages_route_to_destination() {
        let net: ThreadedNet<u32> = ThreadedNet::new(3);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        let c = net.mailbox(NodeId(2));
        assert!(a.send(NodeId(1), 7, 4));
        assert!(a.send(NodeId(2), 9, 4));
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().msg, 9);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn send_to_unknown_node_fails() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        assert!(!a.send(NodeId(9), 1, 4));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        a.send(NodeId(1), 1, 100);
        a.send(NodeId(1), 2, 50);
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert!(stats.bytes_sent >= 150);
    }

    #[test]
    fn cross_thread_delivery_works() {
        let net: ThreadedNet<u64> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        let handle = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..100 {
                if let Some(env) = b.recv_timeout(Duration::from_secs(2)) {
                    sum += env.msg;
                }
            }
            sum
        });
        for i in 1..=100u64 {
            a.send(NodeId(1), i, 8);
        }
        assert_eq!(handle.join().unwrap(), 5050);
    }

    #[test]
    fn pending_reports_queue_depth() {
        let net: ThreadedNet<u32> = ThreadedNet::new(2);
        let a = net.mailbox(NodeId(0));
        let b = net.mailbox(NodeId(1));
        for i in 0..5 {
            a.send(NodeId(1), i, 4);
        }
        assert_eq!(b.pending(), 5);
    }
}
