//! Reliable, in-order link layer over an unreliable transport.
//!
//! Mirrors the paper's low-level reliable messaging (§3.1): every payload is
//! tagged with a per-link sequence number, receivers deliver in order and
//! return cumulative acknowledgements, and senders retransmit unacknowledged
//! messages after a timeout. Duplicates (from retransmission or the network)
//! are filtered by the sequence number.
//!
//! The retransmission timeout is a [`RtoPolicy`]: a fixed interval for the
//! deterministic simulator, or a per-peer adaptive RTO driven by RTT
//! samples ([`crate::rtt`]) for the real runtimes. Under the adaptive
//! policy the endpoint samples the RTT of acknowledged first transmissions
//! (Karn's algorithm: retransmitted messages yield no sample) and backs the
//! per-link timeout off exponentially while retransmissions repeat.

use std::collections::{BTreeMap, HashMap, VecDeque};

use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::rtt::{RtoPolicy, RttEstimator};

/// Wrapper protocol carried on the wire by the reliable layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ReliableMsg<M> {
    /// An application payload with its per-link sequence number.
    Data {
        /// Sequence number, starting at 0 and increasing by 1 per message on
        /// the `(sender, receiver)` link.
        seq: u64,
        /// The application payload.
        payload: M,
    },
    /// Cumulative acknowledgement: every sequence number `< next_expected`
    /// has been received and delivered in order.
    Ack {
        /// The receiver's next expected sequence number.
        next_expected: u64,
    },
}

/// One sent-but-unacknowledged message.
#[derive(Debug)]
struct Pending<M> {
    payload: M,
    /// Tick of the first transmission — the RTT sample base.
    first_sent: u64,
    /// Tick of the most recent (re)transmission.
    last_sent: u64,
    bytes: usize,
    /// Set once retransmitted; such messages never yield RTT samples
    /// (Karn's algorithm — the ack is ambiguous between transmissions).
    retransmitted: bool,
}

/// Per-destination sender state.
#[derive(Debug)]
struct SendLink<M> {
    next_seq: u64,
    /// Unacknowledged messages, keyed by sequence number.
    unacked: BTreeMap<u64, Pending<M>>,
    /// RTT estimator for this link under [`RtoPolicy::Adaptive`].
    rtt: Option<RttEstimator>,
}

impl<M> SendLink<M> {
    fn new(policy: RtoPolicy) -> Self {
        SendLink {
            next_seq: 0,
            unacked: BTreeMap::new(),
            rtt: match policy {
                RtoPolicy::Fixed(_) => None,
                RtoPolicy::Adaptive(config) => Some(RttEstimator::new(config)),
            },
        }
    }

    /// The link's current retransmission timeout.
    fn rto(&self, policy: RtoPolicy) -> u64 {
        match (&self.rtt, policy) {
            (Some(est), _) => est.rto(),
            (None, policy) => policy.initial_rto(),
        }
    }
}

/// Per-source receiver state.
#[derive(Debug)]
struct RecvLink<M> {
    next_expected: u64,
    /// Out-of-order messages buffered until the gap fills.
    buffered: BTreeMap<u64, M>,
    /// Whether data arrived since the last cumulative ack was flushed.
    ack_pending: bool,
}

impl<M> Default for RecvLink<M> {
    fn default() -> Self {
        RecvLink {
            next_expected: 0,
            buffered: BTreeMap::new(),
            ack_pending: false,
        }
    }
}

/// Reliable messaging endpoint for one node.
///
/// The endpoint is transport-agnostic: [`ReliableEndpoint::send`],
/// [`ReliableEndpoint::on_receive`] and [`ReliableEndpoint::tick`] produce
/// wire envelopes that the caller pushes into whichever transport is in use
/// (the simulator in tests, UDP sockets in [`crate::udp`]).
#[derive(Debug)]
pub struct ReliableEndpoint<M> {
    local: NodeId,
    policy: RtoPolicy,
    send_links: HashMap<NodeId, SendLink<M>>,
    recv_links: HashMap<NodeId, RecvLink<M>>,
    /// Payloads delivered in order, ready for the protocol layer.
    delivered: VecDeque<(NodeId, M)>,
    /// Outgoing wire messages produced by the last operation.
    outbox: Vec<Envelope<ReliableMsg<M>>>,
}

impl<M: Clone> ReliableEndpoint<M> {
    /// Creates an endpoint for node `local` whose retransmission timeout
    /// follows `policy`.
    pub fn new(local: NodeId, policy: RtoPolicy) -> Self {
        ReliableEndpoint {
            local,
            policy,
            send_links: HashMap::new(),
            recv_links: HashMap::new(),
            delivered: VecDeque::new(),
            outbox: Vec::new(),
        }
    }

    /// The node this endpoint belongs to.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Number of messages sent but not yet acknowledged (across all links).
    pub fn unacked_len(&self) -> usize {
        self.send_links.values().map(|l| l.unacked.len()).sum()
    }

    /// The largest current per-link retransmission timeout, or the policy's
    /// initial RTO when no links exist yet. Runtimes feed this back as the
    /// protocol layer's retry horizon so higher-level retransmissions never
    /// race the link layer's own.
    pub fn max_rto(&self) -> u64 {
        self.send_links
            .values()
            .map(|l| l.rto(self.policy))
            .max()
            .unwrap_or_else(|| self.policy.initial_rto())
    }

    /// The smoothed RTT toward `peer`, if the adaptive policy has sampled
    /// the link at least once.
    pub fn srtt(&self, peer: NodeId) -> Option<u64> {
        self.send_links.get(&peer)?.rtt.as_ref()?.srtt()
    }

    /// Forgets all link state shared with `peer` (both directions).
    ///
    /// Used when the peer provably rebooted (its boot token changed): its
    /// sequence numbers restart at 0, so the old receive cursor would
    /// silently discard everything it now sends, and the old send window
    /// would retransmit into a socket that no longer remembers the link.
    pub fn reset_peer(&mut self, peer: NodeId) {
        self.send_links.remove(&peer);
        self.recv_links.remove(&peer);
        self.outbox.retain(|env| env.to != peer);
    }

    /// Queues `payload` for reliable delivery to `to`.
    ///
    /// `payload_bytes` is the application payload size used for accounting.
    pub fn send(&mut self, to: NodeId, payload: M, payload_bytes: usize, now: u64) {
        let policy = self.policy;
        let link = self
            .send_links
            .entry(to)
            .or_insert_with(|| SendLink::new(policy));
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.insert(
            seq,
            Pending {
                payload: payload.clone(),
                first_sent: now,
                last_sent: now,
                bytes: payload_bytes,
                retransmitted: false,
            },
        );
        self.outbox.push(Envelope::with_payload_bytes(
            self.local,
            to,
            ReliableMsg::Data { seq, payload },
            payload_bytes + 8,
        ));
    }

    /// Processes an incoming wire message, buffering/reordering as needed.
    pub fn on_receive(&mut self, from: NodeId, msg: ReliableMsg<M>, now: u64) {
        match msg {
            ReliableMsg::Data { seq, payload } => {
                let link = self.recv_links.entry(from).or_default();
                if seq >= link.next_expected {
                    link.buffered.entry(seq).or_insert(payload);
                    // Drain any now-contiguous prefix.
                    while let Some(p) = link.buffered.remove(&link.next_expected) {
                        self.delivered.push_back((from, p));
                        link.next_expected += 1;
                    }
                }
                // Coalesce acks: mark the link dirty instead of emitting one
                // ack per data message; `take_outgoing` flushes a single
                // cumulative ack per link covering the whole batch. Every
                // data message still (eventually) triggers an ack — also on
                // duplicates, so lost acks recover — but a burst of N
                // messages costs one ack instead of N.
                link.ack_pending = true;
            }
            ReliableMsg::Ack { next_expected } => {
                if let Some(link) = self.send_links.get_mut(&from) {
                    // Sample the newest first-transmission the ack covers;
                    // one sample per cumulative ack keeps the estimator from
                    // over-weighting bursts.
                    if let Some(est) = link.rtt.as_mut() {
                        if let Some(p) = link
                            .unacked
                            .range(..next_expected)
                            .map(|(_, p)| p)
                            .rfind(|p| !p.retransmitted)
                        {
                            est.sample(now.saturating_sub(p.first_sent));
                        }
                    }
                    link.unacked.retain(|&seq, _| seq >= next_expected);
                }
            }
        }
    }

    /// Retransmits every message that has been unacknowledged for longer
    /// than the link's current timeout, backing the adaptive timeout off
    /// once per link per expiry.
    pub fn tick(&mut self, now: u64) {
        for (&to, link) in &mut self.send_links {
            let rto = match (&link.rtt, self.policy) {
                (Some(est), _) => est.rto(),
                (None, policy) => policy.initial_rto(),
            };
            let mut expired = false;
            for (&seq, pending) in &mut link.unacked {
                if now.saturating_sub(pending.last_sent) >= rto {
                    expired = true;
                    pending.last_sent = now;
                    pending.retransmitted = true;
                    self.outbox.push(Envelope::with_payload_bytes(
                        self.local,
                        to,
                        ReliableMsg::Data {
                            seq,
                            payload: pending.payload.clone(),
                        },
                        pending.bytes + 8,
                    ));
                }
            }
            if expired {
                if let Some(est) = link.rtt.as_mut() {
                    est.on_timeout();
                }
            }
        }
    }

    /// Drains the wire messages produced since the last call, appending one
    /// coalesced cumulative ack for every link that received data since the
    /// previous flush.
    pub fn take_outgoing(&mut self) -> Vec<Envelope<ReliableMsg<M>>> {
        for (&from, link) in &mut self.recv_links {
            if link.ack_pending {
                link.ack_pending = false;
                self.outbox.push(Envelope::with_payload_bytes(
                    self.local,
                    from,
                    ReliableMsg::Ack {
                        next_expected: link.next_expected,
                    },
                    16,
                ));
            }
        }
        std::mem::take(&mut self.outbox)
    }

    /// Drains the application payloads delivered in order.
    pub fn take_delivered(&mut self) -> Vec<(NodeId, M)> {
        self.delivered.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::RttConfig;
    use crate::sim::{NetConfig, SimNetwork};

    /// Runs two endpoints over a simulated network until quiescence and
    /// returns what `b` delivered.
    fn run_pair(net_config: NetConfig, messages: Vec<u32>, max_ticks: u64) -> Vec<u32> {
        let a = NodeId(0);
        let b = NodeId(1);
        let mut net: SimNetwork<ReliableMsg<u32>> = SimNetwork::new(net_config);
        let mut ep_a: ReliableEndpoint<u32> = ReliableEndpoint::new(a, RtoPolicy::Fixed(20));
        let mut ep_b: ReliableEndpoint<u32> = ReliableEndpoint::new(b, RtoPolicy::Fixed(20));
        for (i, m) in messages.iter().enumerate() {
            ep_a.send(b, *m, 4, i as u64);
        }
        let mut received = Vec::new();
        for _ in 0..max_ticks {
            for env in ep_a.take_outgoing() {
                net.send(env);
            }
            for env in ep_b.take_outgoing() {
                net.send(env);
            }
            // If nothing is in flight (e.g. everything got dropped), let time
            // pass so the retransmission timeout can fire.
            if net.next_delivery_time().is_none() {
                net.advance_by(25);
            }
            let now = net.now();
            ep_a.tick(now);
            ep_b.tick(now);
            for env in net.step() {
                if env.to == a {
                    ep_a.on_receive(env.from, env.msg, now);
                } else {
                    ep_b.on_receive(env.from, env.msg, now);
                }
            }
            received.extend(ep_b.take_delivered().into_iter().map(|(_, m)| m));
            if received.len() == messages.len() && ep_a.unacked_len() == 0 {
                break;
            }
        }
        received
    }

    #[test]
    fn delivers_in_order_over_reliable_network() {
        let msgs: Vec<u32> = (0..50).collect();
        let got = run_pair(NetConfig::reliable(2), msgs.clone(), 1_000);
        assert_eq!(got, msgs);
    }

    #[test]
    fn delivers_in_order_despite_reordering() {
        let config = NetConfig {
            min_delay: 1,
            max_delay: 30,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 11,
            link_overrides: Vec::new(),
        };
        let msgs: Vec<u32> = (0..100).collect();
        let got = run_pair(config, msgs.clone(), 10_000);
        assert_eq!(got, msgs);
    }

    #[test]
    fn recovers_from_heavy_loss_and_duplication() {
        let config = NetConfig::lossy(3, 0.3, 0.3);
        let msgs: Vec<u32> = (0..80).collect();
        let got = run_pair(config, msgs.clone(), 50_000);
        assert_eq!(
            got, msgs,
            "retransmission must mask loss; dedup must mask dup"
        );
    }

    #[test]
    fn duplicates_are_filtered() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(1), RtoPolicy::Fixed(10));
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 0, payload: 7 }, 0);
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 0, payload: 7 }, 1);
        let delivered = ep.take_delivered();
        assert_eq!(delivered, vec![(NodeId(0), 7)]);
    }

    #[test]
    fn out_of_order_data_is_buffered_until_gap_fills() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(1), RtoPolicy::Fixed(10));
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 2, payload: 2 }, 0);
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 1, payload: 1 }, 0);
        assert!(ep.take_delivered().is_empty());
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 0, payload: 0 }, 0);
        let delivered: Vec<u32> = ep.take_delivered().into_iter().map(|(_, m)| m).collect();
        assert_eq!(delivered, vec![0, 1, 2]);
    }

    #[test]
    fn acks_are_coalesced_per_link() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(2), RtoPolicy::Fixed(10));
        for seq in 0..10 {
            ep.on_receive(NodeId(0), ReliableMsg::Data { seq, payload: 1 }, 0);
        }
        ep.on_receive(NodeId(1), ReliableMsg::Data { seq: 0, payload: 2 }, 0);
        let out = ep.take_outgoing();
        // One cumulative ack per link, not one per data message.
        let acks: Vec<_> = out
            .iter()
            .filter(|e| matches!(e.msg, ReliableMsg::Ack { .. }))
            .collect();
        assert_eq!(acks.len(), 2);
        let to_node0 = acks.iter().find(|e| e.to == NodeId(0)).unwrap();
        assert!(matches!(
            to_node0.msg,
            ReliableMsg::Ack { next_expected: 10 }
        ));
        // Nothing new arrived: the next flush carries no acks.
        assert!(ep.take_outgoing().is_empty());
        // A duplicate still re-arms the ack so lost acks recover.
        ep.on_receive(NodeId(0), ReliableMsg::Data { seq: 3, payload: 1 }, 1);
        let out = ep.take_outgoing();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, ReliableMsg::Ack { next_expected: 10 }));
    }

    #[test]
    fn acks_clear_unacked_buffer() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(0), RtoPolicy::Fixed(10));
        ep.send(NodeId(1), 1, 4, 0);
        ep.send(NodeId(1), 2, 4, 0);
        assert_eq!(ep.unacked_len(), 2);
        ep.on_receive(NodeId(1), ReliableMsg::Ack { next_expected: 1 }, 5);
        assert_eq!(ep.unacked_len(), 1);
        ep.on_receive(NodeId(1), ReliableMsg::Ack { next_expected: 2 }, 5);
        assert_eq!(ep.unacked_len(), 0);
    }

    #[test]
    fn tick_retransmits_only_after_timeout() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(0), RtoPolicy::Fixed(10));
        ep.send(NodeId(1), 1, 4, 0);
        ep.take_outgoing();
        ep.tick(5);
        assert!(ep.take_outgoing().is_empty(), "too early to retransmit");
        ep.tick(10);
        let out = ep.take_outgoing();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, ReliableMsg::Data { seq: 0, .. }));
    }

    fn adaptive() -> RtoPolicy {
        RtoPolicy::Adaptive(RttConfig {
            initial_rto: 1_000,
            min_rto: 100,
            max_rto: 64_000,
        })
    }

    #[test]
    fn acks_feed_the_rtt_estimator() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(0), adaptive());
        ep.send(NodeId(1), 1, 4, 0);
        ep.on_receive(NodeId(1), ReliableMsg::Ack { next_expected: 1 }, 300);
        assert_eq!(ep.srtt(NodeId(1)), Some(300));
        // RTO follows srtt + 4·rttvar = 300 + 600, not the initial 1000.
        assert_eq!(ep.max_rto(), 900);
    }

    #[test]
    fn retransmitted_messages_yield_no_sample_but_back_off() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(0), adaptive());
        ep.send(NodeId(1), 1, 4, 0);
        ep.take_outgoing();
        // Timeout fires: retransmit + exponential backoff.
        ep.tick(1_000);
        assert_eq!(ep.take_outgoing().len(), 1);
        assert_eq!(ep.max_rto(), 2_000);
        // A very late ack of the retransmitted message must not poison the
        // estimator with the ambiguous 50_000-tick "RTT" (Karn).
        ep.on_receive(NodeId(1), ReliableMsg::Ack { next_expected: 1 }, 50_000);
        assert_eq!(ep.srtt(NodeId(1)), None);
    }

    #[test]
    fn reset_peer_restarts_both_directions() {
        let mut ep: ReliableEndpoint<u32> = ReliableEndpoint::new(NodeId(0), adaptive());
        ep.send(NodeId(1), 7, 4, 0);
        ep.on_receive(NodeId(1), ReliableMsg::Data { seq: 0, payload: 9 }, 0);
        ep.on_receive(
            NodeId(1),
            ReliableMsg::Data {
                seq: 1,
                payload: 10,
            },
            0,
        );
        assert_eq!(ep.take_delivered().len(), 2);
        assert_eq!(ep.unacked_len(), 1);

        ep.reset_peer(NodeId(1));
        assert_eq!(ep.unacked_len(), 0, "send window forgotten");
        // No stale retransmissions or acks for the reset peer.
        assert!(ep.take_outgoing().is_empty());
        // The rebooted peer restarts at seq 0 and must be delivered, not
        // dropped as a duplicate of the pre-reset link.
        ep.on_receive(
            NodeId(1),
            ReliableMsg::Data {
                seq: 0,
                payload: 42,
            },
            10,
        );
        assert_eq!(ep.take_delivered(), vec![(NodeId(1), 42)]);
        // Fresh sends restart at seq 0 as well.
        ep.send(NodeId(1), 8, 4, 10);
        let out = ep.take_outgoing();
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, ReliableMsg::Data { seq: 0, .. })));
    }
}
