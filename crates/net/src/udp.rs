//! UDP socket runtime for the sans-io [`crate::reliable`] endpoint.
//!
//! This is the half of the stack the paper runs on real machines (§7, their
//! DPDK-based reliable messaging): datagrams are genuinely lossy and
//! unordered, so every guarantee the protocols assume — in-order delivery,
//! retransmission, dedup — comes from [`ReliableEndpoint`] driven by this
//! module. One [`UdpTransport`] per node owns one socket plus a reader
//! thread; the node's event loop keeps calling the same
//! [`crate::transport::Transport`] surface it uses in-process.
//!
//! Layering (the sans-io split):
//!
//! * [`crate::reliable`] decides *what* to (re)send and when — pure state
//!   machine, no I/O, fully unit-testable.
//! * this module decides *how*: frames envelopes onto datagrams
//!   ([`encode_frame`]/[`decode_frame`]), pumps the socket, and feeds
//!   wall-clock microseconds and RTT samples back into the endpoint's
//!   adaptive RTO ([`crate::rtt`]).
//!
//! Every frame carries the sender's **boot token**, a random value chosen
//! per transport instance. A `kill -9`'d node that restarts on the same
//! address starts its sequence numbers from 0 again; peers detect the
//! changed token and reset both directions of link state
//! ([`ReliableEndpoint::reset_peer`]), so the restarted node is neither
//! deduplicated into silence nor buffered behind sequence numbers it will
//! never send.
//!
//! Datagrams larger than [`MAX_DATAGRAM`] are dropped at send time and
//! counted as failed — the protocols keep payloads far below that, and a
//! fragmentation layer is out of scope for a loopback/LAN reproduction.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use zeus_proto::wire::Wire;
use zeus_proto::{NodeId, ProtoError};

use crate::envelope::Envelope;
use crate::reliable::{ReliableEndpoint, ReliableMsg};
use crate::rtt::{RtoPolicy, RttConfig};
use crate::threaded::{LinkFaults, SharedCounters};
use crate::transport::Transport;

/// Largest datagram the transport will put on (or accept from) a socket.
pub const MAX_DATAGRAM: usize = 60 * 1024;

/// Leading magic of every frame, so stray datagrams are rejected cheaply.
const FRAME_MAGIC: u16 = 0x5A55; // "ZU"

/// How long the reader thread blocks in `recv_from` before running the
/// endpoint's retransmission tick. Bounds both shutdown latency and the
/// extra delay a retransmission can suffer beyond its RTO.
const READ_TIMEOUT: Duration = Duration::from_micros(500);

/// Unacked-window depth past which [`Transport::congested`] reports the
/// link backlogged, so the protocol layer stretches its own retries.
const CONGESTED_UNACKED: usize = 512;

/// Deterministic send-side packet loss for tests: every outgoing frame is
/// dropped with `drop_probability`, driven by a seeded xorshift generator.
/// This is the "test-only lossy socket wrapper" — loss is injected *before*
/// the socket, so tests exercise real loss recovery without depending on
/// kernel behavior.
#[derive(Debug, Clone, Copy)]
pub struct LossyConfig {
    /// Probability in `[0, 1]` that a frame is dropped instead of sent.
    pub drop_probability: f64,
    /// PRNG seed; equal seeds drop the same frame positions.
    pub seed: u64,
}

/// Configuration of one node's UDP transport.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// This node's id; `peers[local.index()]` is (or will be) its own bind
    /// address.
    pub local: NodeId,
    /// Socket address of every cluster member, indexed by [`NodeId`].
    pub peers: Vec<SocketAddr>,
    /// Adaptive-RTO bounds for the per-peer estimators.
    pub rtt: RttConfig,
    /// Optional deterministic send-side loss injection (tests only).
    pub loss: Option<LossyConfig>,
}

impl UdpConfig {
    /// Config with [`RttConfig::udp_default`] timeouts and no loss.
    pub fn new(local: NodeId, peers: Vec<SocketAddr>) -> Self {
        UdpConfig {
            local,
            peers,
            rtt: RttConfig::udp_default(),
            loss: None,
        }
    }
}

/// Encodes one reliable-layer message as a datagram frame:
/// `magic · from · boot · kind · seq/cumack · payload`.
pub fn encode_frame<M: Wire>(from: NodeId, boot: u32, msg: &ReliableMsg<M>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(17 + 8);
    FRAME_MAGIC.encode(&mut buf);
    from.0.encode(&mut buf);
    boot.encode(&mut buf);
    match msg {
        ReliableMsg::Data { seq, payload } => {
            0u8.encode(&mut buf);
            seq.encode(&mut buf);
            payload.encode(&mut buf);
        }
        ReliableMsg::Ack { next_expected } => {
            1u8.encode(&mut buf);
            next_expected.encode(&mut buf);
        }
    }
    buf
}

/// Decodes a datagram frame back into `(sender, boot_token, message)`.
pub fn decode_frame<M: Wire>(mut buf: &[u8]) -> Result<(NodeId, u32, ReliableMsg<M>), ProtoError> {
    let buf = &mut buf;
    let magic = u16::decode(buf)?;
    if magic != FRAME_MAGIC {
        return Err(ProtoError::InvalidTag {
            ty: "UdpFrame(magic)",
            tag: (magic & 0xff) as u8,
        });
    }
    let from = NodeId(u16::decode(buf)?);
    let boot = u32::decode(buf)?;
    let kind = u8::decode(buf)?;
    let msg = match kind {
        0 => ReliableMsg::Data {
            seq: u64::decode(buf)?,
            payload: M::decode(buf)?,
        },
        1 => ReliableMsg::Ack {
            next_expected: u64::decode(buf)?,
        },
        other => {
            return Err(ProtoError::InvalidTag {
                ty: "UdpFrame(kind)",
                tag: other,
            })
        }
    };
    Ok((from, boot, msg))
}

/// Seeded xorshift64 loss injector.
#[derive(Debug)]
struct Lossy {
    state: u64,
    /// Drop threshold out of 2^32.
    threshold: u64,
}

impl Lossy {
    fn new(config: LossyConfig) -> Self {
        Lossy {
            state: config.seed.max(1),
            threshold: (config.drop_probability.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64,
        }
    }

    fn drop_next(&mut self) -> bool {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state & 0xffff_ffff) < self.threshold
    }
}

/// State shared between the owning node loop and the reader thread.
struct Shared<M> {
    local: NodeId,
    boot: u32,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    endpoint: Mutex<ReliableEndpoint<M>>,
    /// Last boot token seen per peer; a change resets the peer's links.
    peer_boots: Mutex<HashMap<NodeId, u32>>,
    delivered_tx: Sender<Envelope<M>>,
    counters: Arc<SharedCounters>,
    faults: Arc<LinkFaults>,
    loss: Option<Mutex<Lossy>>,
    started: Instant,
}

impl<M: Wire + Clone> Shared<M> {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Puts the endpoint's pending wire messages on the socket.
    fn ship(&self, out: Vec<Envelope<ReliableMsg<M>>>) {
        for env in out {
            let frame = encode_frame(self.local, self.boot, &env.msg);
            if frame.len() > MAX_DATAGRAM {
                self.counters.record_failed(frame.len());
                continue;
            }
            if self.faults.is_cut(self.local, env.to) {
                self.counters.record_failed(frame.len());
                continue;
            }
            let Some(&addr) = self.peers.get(env.to.index()) else {
                self.counters.record_failed(frame.len());
                continue;
            };
            if let Some(loss) = &self.loss {
                if loss.lock().drop_next() {
                    // Injected loss still counts as sent traffic — that is
                    // the point: the reliable layer must pay for recovery.
                    self.counters.record(frame.len(), 0);
                    continue;
                }
            }
            match self.socket.send_to(&frame, addr) {
                Ok(_) => self.counters.record(frame.len(), 0),
                Err(_) => self.counters.record_failed(frame.len()),
            }
        }
    }

    /// Handles one datagram from the socket.
    fn on_datagram(&self, buf: &[u8]) {
        let Ok((from, boot, msg)) = decode_frame::<M>(buf) else {
            // Stray or corrupt datagram: not protocol traffic, ignore.
            return;
        };
        if from == self.local {
            return;
        }
        let now = self.now_us();
        let mut endpoint = self.endpoint.lock();
        {
            let mut boots = self.peer_boots.lock();
            match boots.insert(from, boot) {
                Some(prev) if prev != boot => {
                    // The peer rebooted: its sequence space restarted, so
                    // both directions of link state are stale.
                    endpoint.reset_peer(from);
                }
                _ => {}
            }
        }
        endpoint.on_receive(from, msg, now);
        for (peer, payload) in endpoint.take_delivered() {
            let _ = self
                .delivered_tx
                .send(Envelope::with_payload_bytes(peer, self.local, payload, 0));
        }
        let out = endpoint.take_outgoing();
        drop(endpoint);
        self.ship(out);
    }

    /// Runs the endpoint's retransmission timer and ships what it produced.
    fn tick(&self) {
        let now = self.now_us();
        let mut endpoint = self.endpoint.lock();
        endpoint.tick(now);
        let out = endpoint.take_outgoing();
        drop(endpoint);
        self.ship(out);
    }
}

/// One node's UDP socket runtime (see the module docs).
///
/// Dropping the transport stops the reader thread and closes the socket.
pub struct UdpTransport<M> {
    shared: Arc<Shared<M>>,
    delivered_rx: Receiver<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl<M> std::fmt::Debug for UdpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpTransport")
            .field("local", &self.shared.local)
            .field("boot", &self.shared.boot)
            .finish()
    }
}

impl<M: Wire + Clone + Send + 'static> UdpTransport<M> {
    /// Binds `config.peers[config.local]` and starts the reader thread.
    pub fn bind(config: UdpConfig) -> std::io::Result<Self> {
        let addr = *config.peers.get(config.local.index()).ok_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "local id not in peer list")
        })?;
        let socket = UdpSocket::bind(addr)?;
        Self::from_socket(
            socket,
            config,
            Arc::new(SharedCounters::default()),
            Arc::new(LinkFaults::default()),
        )
    }

    /// Wraps an already-bound socket, sharing `counters`/`faults` with
    /// sibling transports (the in-process [`UdpCluster`] case, where
    /// fault injection and traffic accounting span the whole cluster).
    ///
    /// [`UdpCluster`]: ../../zeus_core/runtime/struct.UdpCluster.html
    pub fn from_socket(
        socket: UdpSocket,
        config: UdpConfig,
        counters: Arc<SharedCounters>,
        faults: Arc<LinkFaults>,
    ) -> std::io::Result<Self> {
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        let reader_socket = socket.try_clone()?;
        let (delivered_tx, delivered_rx) = unbounded();
        // The boot token only needs to differ between two incarnations of
        // the same node id on the same address; wall-clock nanos mixed with
        // the pid are ample.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let boot = (nanos ^ (nanos >> 32) ^ (std::process::id() as u64)) as u32;
        let shared = Arc::new(Shared {
            local: config.local,
            boot,
            socket,
            peers: config.peers,
            endpoint: Mutex::new(ReliableEndpoint::new(
                config.local,
                RtoPolicy::Adaptive(config.rtt),
            )),
            peer_boots: Mutex::new(HashMap::new()),
            delivered_tx,
            counters,
            faults,
            loss: config.loss.map(|l| Mutex::new(Lossy::new(l))),
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                let mut buf = vec![0u8; MAX_DATAGRAM + 1024];
                while !shutdown.load(Ordering::Relaxed) {
                    match reader_socket.recv_from(&mut buf) {
                        Ok((n, _src)) => shared.on_datagram(&buf[..n]),
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            // Idle: run the retransmission timer so loss
                            // recovery does not depend on the node loop's
                            // own cadence.
                            shared.tick();
                        }
                        // Transient errors (e.g. ICMP port-unreachable
                        // surfacing as ConnectionRefused on Linux) must not
                        // kill the reader: peers may simply not be up yet.
                        Err(_) => shared.tick(),
                    }
                }
            })
        };
        Ok(UdpTransport {
            shared,
            delivered_rx,
            shutdown,
            reader: Some(reader),
        })
    }

    /// The address this transport's socket is bound to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.shared.socket.local_addr()
    }

    /// The smoothed RTT estimate toward `peer`, if sampled yet.
    pub fn srtt_micros(&self, peer: NodeId) -> Option<u64> {
        self.shared.endpoint.lock().srtt(peer)
    }

    /// Messages sent but not yet acknowledged across all peers.
    pub fn unacked(&self) -> usize {
        self.shared.endpoint.lock().unacked_len()
    }

    /// Snapshot of this transport's traffic counters.
    pub fn stats(&self) -> crate::stats::NetStats {
        self.shared.counters.snapshot()
    }
}

impl<M> Drop for UdpTransport<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl<M: Wire + Clone + Send + 'static> Transport<M> for UdpTransport<M> {
    fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool {
        if to == self.shared.local {
            // Self-sends never touch the wire (mirroring the in-process
            // mailbox): straight into the delivery queue, no sequence
            // numbers consumed.
            let env = Envelope::with_payload_bytes(to, to, msg, payload_bytes);
            return self.shared.delivered_tx.send(env).is_ok();
        }
        if self.shared.faults.is_cut(self.shared.local, to) {
            self.shared.counters.record_failed(payload_bytes);
            return false;
        }
        if self.shared.peers.get(to.index()).is_none() {
            self.shared.counters.record_failed(payload_bytes);
            return false;
        }
        let now = self.shared.now_us();
        let mut endpoint = self.shared.endpoint.lock();
        endpoint.send(to, msg, payload_bytes, now);
        let out = endpoint.take_outgoing();
        drop(endpoint);
        self.shared.ship(out);
        true
    }

    fn send_batch(&self, msgs: Vec<(NodeId, M, usize)>) {
        let now = self.shared.now_us();
        let mut endpoint = self.shared.endpoint.lock();
        for (to, msg, payload_bytes) in msgs {
            if to == self.shared.local {
                let env = Envelope::with_payload_bytes(to, to, msg, payload_bytes);
                let _ = self.shared.delivered_tx.send(env);
                continue;
            }
            if self.shared.faults.is_cut(self.shared.local, to)
                || self.shared.peers.get(to.index()).is_none()
            {
                self.shared.counters.record_failed(payload_bytes);
                continue;
            }
            endpoint.send(to, msg, payload_bytes, now);
        }
        let out = endpoint.take_outgoing();
        drop(endpoint);
        self.shared.ship(out);
    }

    fn drain_into(&self, buf: &mut Vec<Envelope<M>>, max: usize) -> usize {
        self.delivered_rx.drain_into(buf, max)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.delivered_rx.recv_timeout(timeout).ok()
    }

    fn pending(&self) -> usize {
        self.delivered_rx.len()
    }

    fn maintain(&self, _now_us: u64) {
        self.shared.tick();
    }

    fn rto_micros(&self) -> Option<u64> {
        Some(self.shared.endpoint.lock().max_rto())
    }

    fn congested(&self) -> bool {
        self.shared.endpoint.lock().unacked_len() > CONGESTED_UNACKED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_data_and_ack() {
        let data: ReliableMsg<u32> = ReliableMsg::Data {
            seq: 42,
            payload: 7,
        };
        let frame = encode_frame(NodeId(3), 0xDEAD_BEEF, &data);
        let (from, boot, msg) = decode_frame::<u32>(&frame).unwrap();
        assert_eq!(from, NodeId(3));
        assert_eq!(boot, 0xDEAD_BEEF);
        assert_eq!(msg, data);

        let ack: ReliableMsg<u32> = ReliableMsg::Ack { next_expected: 9 };
        let frame = encode_frame(NodeId(1), 1, &ack);
        let (_, _, msg) = decode_frame::<u32>(&frame).unwrap();
        assert_eq!(msg, ack);
    }

    #[test]
    fn bad_magic_and_bad_kind_are_rejected() {
        let mut frame = encode_frame(
            NodeId(0),
            1,
            &ReliableMsg::Data {
                seq: 0,
                payload: 5u32,
            },
        );
        frame[0] ^= 0xff;
        assert!(decode_frame::<u32>(&frame).is_err());
        let mut frame = encode_frame(
            NodeId(0),
            1,
            &ReliableMsg::Data {
                seq: 0,
                payload: 5u32,
            },
        );
        frame[8] = 9; // kind byte
        assert!(decode_frame::<u32>(&frame).is_err());
        assert!(decode_frame::<u32>(&[]).is_err());
    }

    #[test]
    fn lossy_seed_is_deterministic_and_respects_probability() {
        let mut a = Lossy::new(LossyConfig {
            drop_probability: 0.3,
            seed: 7,
        });
        let mut b = Lossy::new(LossyConfig {
            drop_probability: 0.3,
            seed: 7,
        });
        let pattern_a: Vec<bool> = (0..1000).map(|_| a.drop_next()).collect();
        let pattern_b: Vec<bool> = (0..1000).map(|_| b.drop_next()).collect();
        assert_eq!(pattern_a, pattern_b, "same seed, same drops");
        let drops = pattern_a.iter().filter(|&&d| d).count();
        assert!((200..400).contains(&drops), "~30% of 1000, got {drops}");
        let mut never = Lossy::new(LossyConfig {
            drop_probability: 0.0,
            seed: 7,
        });
        assert!((0..1000).all(|_| !never.drop_next()));
    }
}
