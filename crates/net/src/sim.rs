//! Deterministic discrete-time network simulator with fault injection.
//!
//! The simulator keeps a priority queue of in-flight messages keyed by
//! delivery time (in abstract "ticks"; the Zeus harness interprets one tick
//! as one microsecond). Latency, loss, duplication and reordering are drawn
//! from a seeded RNG, so every faulty execution is reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::stats::NetStats;

/// Static per-link parameter override (see [`NetConfig::link_overrides`]).
///
/// Overrides model heterogeneous topologies (a slow or flaky WAN link between
/// two specific nodes) and are consulted for the `from → to` direction only;
/// configure both directions for a symmetric link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkOverride {
    /// Source node of the directed link.
    pub from: NodeId,
    /// Destination node of the directed link.
    pub to: NodeId,
    /// Minimum one-way latency in ticks for this link.
    pub min_delay: u64,
    /// Maximum one-way latency in ticks for this link.
    pub max_delay: u64,
    /// Drop probability for this link (replaces the global probability).
    pub drop_probability: f64,
}

/// Network behaviour configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum one-way latency in ticks.
    pub min_delay: u64,
    /// Maximum one-way latency in ticks. With `max_delay > min_delay` the
    /// network naturally reorders messages.
    pub max_delay: u64,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a message is duplicated (delivered twice).
    pub duplicate_probability: f64,
    /// RNG seed; identical seeds give identical executions.
    pub seed: u64,
    /// Per-link parameter overrides. Links without an override use the
    /// global `min_delay`/`max_delay`/`drop_probability`. An empty list (the
    /// default) leaves the simulator's behaviour — including its RNG stream —
    /// byte-identical to configurations predating this field, so existing
    /// seeds replay unchanged.
    pub link_overrides: Vec<LinkOverride>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_delay: 2,
            max_delay: 5,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0x5EED,
            link_overrides: Vec::new(),
        }
    }
}

impl NetConfig {
    /// A perfectly reliable, fixed-latency network (useful for protocol unit
    /// tests where faults are injected explicitly).
    pub fn reliable(delay: u64) -> Self {
        NetConfig {
            min_delay: delay,
            max_delay: delay,
            seed: 7,
            ..NetConfig::default()
        }
    }

    /// A lossy, reordering network used by fault-injection tests.
    pub fn lossy(seed: u64, drop_probability: f64, duplicate_probability: f64) -> Self {
        NetConfig {
            min_delay: 1,
            max_delay: 10,
            drop_probability,
            duplicate_probability,
            seed,
            link_overrides: Vec::new(),
        }
    }

    /// Adds a per-link override (builder style).
    #[must_use]
    pub fn with_link_override(mut self, link: LinkOverride) -> Self {
        self.link_overrides.push(link);
        self
    }

    /// The override configured for `from → to`, if any.
    pub fn link_override(&self, from: NodeId, to: NodeId) -> Option<&LinkOverride> {
        self.link_overrides
            .iter()
            .find(|l| l.from == from && l.to == to)
    }
}

/// Additional, deterministic fault plan applied on top of probabilistic
/// faults: crashed nodes, (directed) link partitions, per-link latency
/// spikes and bounded per-link drop bursts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Nodes that have crashed: all traffic to and from them is dropped.
    pub crashed: HashSet<NodeId>,
    /// Directed links that are cut (`(from, to)` pairs).
    pub cut_links: HashSet<(NodeId, NodeId)>,
    /// Extra one-way latency (ticks) currently added per directed link.
    pub link_extra_delay: HashMap<(NodeId, NodeId), u64>,
    /// Remaining messages to drop per directed link (drop bursts). The entry
    /// is removed once the count reaches zero.
    pub link_drop_burst: HashMap<(NodeId, NodeId), u64>,
}

impl FaultPlan {
    /// Returns `true` if a message from `from` to `to` must be dropped.
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.cut_links.contains(&(from, to))
    }

    /// Marks a node as crashed.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revives a crashed node (e.g. after it rejoins in a later epoch).
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Cuts the directed link `from → to`.
    pub fn cut(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.insert((from, to));
    }

    /// Cuts both directions between two nodes.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert((a, b));
        self.cut_links.insert((b, a));
    }

    /// Heals the directed link `from → to` (cut and latency spike).
    pub fn heal_link(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.remove(&(from, to));
        self.link_extra_delay.remove(&(from, to));
    }

    /// Heals both directions between two nodes.
    pub fn heal_partition(&mut self, a: NodeId, b: NodeId) {
        self.heal_link(a, b);
        self.heal_link(b, a);
    }

    /// Heals every cut link.
    pub fn heal_links(&mut self) {
        self.cut_links.clear();
    }

    /// Adds `extra` ticks of one-way latency on `from → to` until cleared.
    pub fn spike(&mut self, from: NodeId, to: NodeId, extra: u64) {
        self.link_extra_delay.insert((from, to), extra);
    }

    /// Removes the latency spike on `from → to`.
    pub fn clear_spike(&mut self, from: NodeId, to: NodeId) {
        self.link_extra_delay.remove(&(from, to));
    }

    /// Removes every latency spike.
    pub fn clear_spikes(&mut self) {
        self.link_extra_delay.clear();
    }

    /// Drops the next `count` messages sent on `from → to`.
    pub fn drop_burst(&mut self, from: NodeId, to: NodeId, count: u64) {
        if count > 0 {
            *self.link_drop_burst.entry((from, to)).or_insert(0) += count;
        }
    }

    /// Cancels every pending drop burst.
    pub fn clear_drop_bursts(&mut self) {
        self.link_drop_burst.clear();
    }

    /// Heals every injected link fault (cuts, spikes and drop bursts) at
    /// once. Crashed nodes are unaffected.
    pub fn heal_all(&mut self) {
        self.heal_links();
        self.clear_spikes();
        self.clear_drop_bursts();
    }

    /// Extra latency currently applied to `from → to`.
    fn extra_delay(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_extra_delay.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Consumes one message from the drop burst on `from → to`, returning
    /// `true` if the message must be dropped.
    fn take_burst_drop(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.link_drop_burst.get_mut(&(from, to)) {
            Some(remaining) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.link_drop_burst.remove(&(from, to));
                }
                true
            }
            None => false,
        }
    }
}

#[derive(Debug)]
struct InFlight<M> {
    deliver_at: u64,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Deterministic discrete-time network simulator.
///
/// # Determinism contract
///
/// Every faulty execution is reproducible from `NetConfig::seed`: the RNG is
/// consumed only by [`SimNetwork::send`], in a fixed order per message
/// (drop draw, then duplicate draw, then one latency draw per copy), and a
/// draw is skipped entirely when its probability is zero or the latency
/// range is a single value. Deterministic faults — [`FaultPlan`] cuts,
/// crashes, latency spikes and drop bursts, and [`NetConfig::link_overrides`]
/// — never consume randomness beyond that fixed order: a link override
/// substitutes the *parameters* of the existing draws, a spike adds a
/// constant after the latency draw, and cuts/bursts drop the message before
/// any draw happens. Consequently a config with no overrides behaves
/// byte-identically to one predating these fields, and replaying the same
/// seed with the same fault injections yields the same delivery schedule.
#[derive(Debug)]
pub struct SimNetwork<M> {
    config: NetConfig,
    faults: FaultPlan,
    now: u64,
    next_seq: u64,
    in_flight: BinaryHeap<Reverse<InFlight<M>>>,
    rng: StdRng,
    stats: NetStats,
}

impl<M> SimNetwork<M> {
    /// Creates a simulator with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SimNetwork {
            config,
            faults: FaultPlan::default(),
            now: 0,
            next_seq: 0,
            in_flight: BinaryHeap::new(),
            rng,
            stats: NetStats::new(),
        }
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of messages currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to the deterministic fault plan.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Submits a message for delivery.
    ///
    /// The message may be dropped or duplicated according to the configured
    /// probabilities, and is always dropped if the fault plan blocks the
    /// link or either endpoint crashed.
    pub fn send(&mut self, envelope: Envelope<M>)
    where
        M: Clone,
    {
        self.stats.record_send(envelope.from, envelope.wire_bytes);
        if self.faults.blocks(envelope.from, envelope.to)
            || self.faults.take_burst_drop(envelope.from, envelope.to)
        {
            self.stats.record_drop();
            return;
        }
        // Per-link overrides substitute the parameters of the draws below;
        // the draw structure itself is fixed (see the determinism contract).
        let (min_delay, max_delay, drop_probability) =
            match self.config.link_override(envelope.from, envelope.to) {
                Some(l) => (l.min_delay, l.max_delay, l.drop_probability),
                None => (
                    self.config.min_delay,
                    self.config.max_delay,
                    self.config.drop_probability,
                ),
            };
        if drop_probability > 0.0 && self.rng.gen_bool(drop_probability.min(1.0)) {
            self.stats.record_drop();
            return;
        }
        let copies = if self.config.duplicate_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.duplicate_probability.min(1.0))
        {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        let extra = self.faults.extra_delay(envelope.from, envelope.to);
        for _ in 0..copies {
            let delay = if max_delay > min_delay {
                self.rng.gen_range(min_delay..=max_delay)
            } else {
                min_delay
            };
            let item = InFlight {
                deliver_at: self.now + delay.max(1) + extra,
                seq: self.next_seq,
                envelope: envelope.clone(),
            };
            self.next_seq += 1;
            self.in_flight.push(Reverse(item));
        }
    }

    /// Delivery time of the earliest in-flight message, if any.
    pub fn next_delivery_time(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(i)| i.deliver_at)
    }

    /// Advances time to the next delivery and returns every message due at
    /// that instant. Returns an empty vector when nothing is in flight.
    ///
    /// Messages addressed to nodes that crashed while the message was in
    /// flight are discarded at delivery time.
    pub fn step(&mut self) -> Vec<Envelope<M>> {
        let Some(t) = self.next_delivery_time() else {
            return Vec::new();
        };
        self.advance_to(t)
    }

    /// Advances time to `t` (if later than now) and returns all messages due
    /// at or before `t`, in delivery order.
    pub fn advance_to(&mut self, t: u64) -> Vec<Envelope<M>> {
        if t > self.now {
            self.now = t;
        }
        let mut delivered = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > self.now {
                break;
            }
            let Reverse(item) = self.in_flight.pop().expect("peeked");
            if self.faults.blocks(item.envelope.from, item.envelope.to) {
                self.stats.record_drop();
                continue;
            }
            self.stats.record_delivery(item.envelope.wire_bytes);
            delivered.push(item.envelope);
        }
        delivered
    }

    /// Advances time by `dt` ticks and returns everything due.
    pub fn advance_by(&mut self, dt: u64) -> Vec<Envelope<M>> {
        self.advance_to(self.now + dt)
    }

    /// Drops every in-flight message (used to model a full network blip).
    pub fn drop_all_in_flight(&mut self) {
        let n = self.in_flight.len() as u64;
        self.stats.messages_dropped += n;
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u16, to: u16, msg: u32) -> Envelope<u32> {
        Envelope::with_payload_bytes(NodeId(from), NodeId(to), msg, 8)
    }

    #[test]
    fn reliable_network_delivers_in_order() {
        let mut net = SimNetwork::new(NetConfig::reliable(3));
        net.send(env(0, 1, 1));
        net.send(env(0, 1, 2));
        net.send(env(0, 1, 3));
        let delivered = net.step();
        assert_eq!(delivered.len(), 3);
        assert_eq!(
            delivered.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(net.now(), 3);
        assert_eq!(net.stats().messages_delivered, 3);
    }

    #[test]
    fn step_on_empty_network_returns_nothing() {
        let mut net: SimNetwork<u32> = SimNetwork::new(NetConfig::reliable(1));
        assert!(net.step().is_empty());
        assert_eq!(net.next_delivery_time(), None);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut net = SimNetwork::new(NetConfig::lossy(1, 1.0, 0.0));
        for i in 0..10 {
            net.send(env(0, 1, i));
        }
        assert_eq!(net.in_flight_len(), 0);
        assert_eq!(net.stats().messages_dropped, 10);
    }

    #[test]
    fn duplicate_probability_one_duplicates_everything() {
        let mut net = SimNetwork::new(NetConfig::lossy(1, 0.0, 1.0));
        net.send(env(0, 1, 7));
        let mut total = 0;
        while net.in_flight_len() > 0 {
            total += net.step().len();
        }
        assert_eq!(total, 2);
        assert_eq!(net.stats().messages_duplicated, 1);
    }

    #[test]
    fn variable_latency_reorders_messages() {
        let config = NetConfig {
            min_delay: 1,
            max_delay: 50,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 42,
            link_overrides: Vec::new(),
        };
        let mut net = SimNetwork::new(config);
        for i in 0..100u32 {
            net.send(env(0, 1, i));
        }
        let mut order = Vec::new();
        loop {
            let batch = net.step();
            if batch.is_empty() {
                break;
            }
            order.extend(batch.into_iter().map(|e| e.msg));
        }
        assert_eq!(order.len(), 100);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "expected at least one reordering");
    }

    #[test]
    fn crashed_node_receives_and_sends_nothing() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().crash(NodeId(1));
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        assert_eq!(net.in_flight_len(), 0);
        net.faults_mut().revive(NodeId(1));
        net.send(env(0, 1, 3));
        assert_eq!(net.step().len(), 1);
    }

    #[test]
    fn crash_after_send_drops_at_delivery() {
        let mut net = SimNetwork::new(NetConfig::reliable(5));
        net.send(env(0, 1, 1));
        net.faults_mut().crash(NodeId(1));
        assert!(net.step().is_empty());
        assert_eq!(net.stats().messages_dropped, 1);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().partition(NodeId(0), NodeId(1));
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        net.send(env(0, 2, 3));
        let delivered = net.step();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].msg, 3);
        net.faults_mut().heal_links();
        net.send(env(0, 1, 4));
        assert_eq!(net.step().len(), 1);
    }

    #[test]
    fn same_seed_same_execution() {
        let run = |seed| {
            let mut net = SimNetwork::new(NetConfig::lossy(seed, 0.3, 0.2));
            for i in 0..200u32 {
                net.send(env(0, 1, i));
            }
            let mut order = Vec::new();
            loop {
                let batch = net.step();
                if batch.is_empty() {
                    break;
                }
                order.extend(batch.into_iter().map(|e| e.msg));
            }
            order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn default_config_rng_stream_is_unchanged_by_empty_overrides() {
        // The determinism contract: an empty `link_overrides` list must not
        // perturb the RNG stream, so executions recorded before the field
        // existed replay identically.
        let run = |config: NetConfig| {
            let mut net = SimNetwork::new(config);
            for i in 0..100u32 {
                net.send(env(0, 1, i));
            }
            let mut order = Vec::new();
            loop {
                let batch = net.step();
                if batch.is_empty() {
                    break;
                }
                order.extend(batch.into_iter().map(|e| (e.msg, net.now())));
            }
            order
        };
        let base = NetConfig::lossy(99, 0.2, 0.1);
        let mut with_unrelated_override = base.clone();
        // An override on a link the trace never uses must not matter either.
        with_unrelated_override.link_overrides.push(LinkOverride {
            from: NodeId(5),
            to: NodeId(6),
            min_delay: 100,
            max_delay: 200,
            drop_probability: 0.9,
        });
        assert_eq!(run(base), run(with_unrelated_override));
    }

    #[test]
    fn link_override_substitutes_latency_and_drop() {
        let config = NetConfig::reliable(2).with_link_override(LinkOverride {
            from: NodeId(0),
            to: NodeId(1),
            min_delay: 50,
            max_delay: 50,
            drop_probability: 0.0,
        });
        let mut net = SimNetwork::new(config);
        net.send(env(0, 1, 1)); // overridden: slow link
        net.send(env(0, 2, 2)); // default: fast link
        let first = net.step();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].msg, 2);
        assert_eq!(net.now(), 2);
        let second = net.step();
        assert_eq!(second[0].msg, 1);
        assert_eq!(net.now(), 50);

        // A lossy override drops deterministically with p = 1.
        let config = NetConfig::reliable(2).with_link_override(LinkOverride {
            from: NodeId(0),
            to: NodeId(1),
            min_delay: 1,
            max_delay: 1,
            drop_probability: 1.0,
        });
        let mut net = SimNetwork::new(config);
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2)); // reverse direction is not overridden
        assert_eq!(net.in_flight_len(), 1);
        assert_eq!(net.stats().messages_dropped, 1);
    }

    #[test]
    fn latency_spike_adds_constant_delay_until_cleared() {
        let mut net = SimNetwork::new(NetConfig::reliable(2));
        net.faults_mut().spike(NodeId(0), NodeId(1), 100);
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        let batch = net.step();
        assert_eq!(batch[0].msg, 2, "reverse link unaffected");
        assert_eq!(net.now(), 2);
        let batch = net.step();
        assert_eq!(batch[0].msg, 1);
        assert_eq!(net.now(), 102);
        net.faults_mut().clear_spike(NodeId(0), NodeId(1));
        net.send(env(0, 1, 3));
        net.step();
        assert_eq!(net.now(), 104);
    }

    #[test]
    fn drop_burst_drops_exactly_count_messages() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().drop_burst(NodeId(0), NodeId(1), 3);
        for i in 0..5u32 {
            net.send(env(0, 1, i));
        }
        net.send(env(1, 0, 9)); // other direction unaffected
        assert_eq!(net.stats().messages_dropped, 3);
        let mut delivered = Vec::new();
        loop {
            let batch = net.step();
            if batch.is_empty() {
                break;
            }
            delivered.extend(batch.into_iter().map(|e| e.msg));
        }
        assert_eq!(delivered, vec![3, 4, 9]);
        assert!(net.faults().link_drop_burst.is_empty(), "burst consumed");
    }

    #[test]
    fn heal_partition_and_heal_all_restore_traffic() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().partition(NodeId(0), NodeId(1));
        net.faults_mut().cut(NodeId(0), NodeId(2));
        net.faults_mut().spike(NodeId(2), NodeId(0), 7);
        net.faults_mut().drop_burst(NodeId(2), NodeId(1), 2);
        net.faults_mut().heal_partition(NodeId(0), NodeId(1));
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        net.send(env(0, 2, 3)); // still cut
        assert_eq!(net.step().len(), 2);
        assert_eq!(net.stats().messages_dropped, 1);
        net.faults_mut().heal_all();
        assert!(net.faults().cut_links.is_empty());
        assert!(net.faults().link_extra_delay.is_empty());
        assert!(net.faults().link_drop_burst.is_empty());
        net.send(env(0, 2, 4));
        assert_eq!(net.step().len(), 1);
    }

    #[test]
    fn advance_by_moves_time_without_messages() {
        let mut net: SimNetwork<u32> = SimNetwork::new(NetConfig::reliable(1));
        net.advance_by(100);
        assert_eq!(net.now(), 100);
    }

    #[test]
    fn drop_all_in_flight_clears_queue() {
        let mut net = SimNetwork::new(NetConfig::reliable(10));
        net.send(env(0, 1, 1));
        net.send(env(0, 1, 2));
        net.drop_all_in_flight();
        assert_eq!(net.in_flight_len(), 0);
        assert!(net.step().is_empty());
        assert_eq!(net.stats().messages_dropped, 2);
    }
}
