//! Deterministic discrete-time network simulator with fault injection.
//!
//! The simulator keeps a priority queue of in-flight messages keyed by
//! delivery time (in abstract "ticks"; the Zeus harness interprets one tick
//! as one microsecond). Latency, loss, duplication and reordering are drawn
//! from a seeded RNG, so every faulty execution is reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::stats::NetStats;

/// Network behaviour configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum one-way latency in ticks.
    pub min_delay: u64,
    /// Maximum one-way latency in ticks. With `max_delay > min_delay` the
    /// network naturally reorders messages.
    pub max_delay: u64,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a message is duplicated (delivered twice).
    pub duplicate_probability: f64,
    /// RNG seed; identical seeds give identical executions.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_delay: 2,
            max_delay: 5,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0x5EED,
        }
    }
}

impl NetConfig {
    /// A perfectly reliable, fixed-latency network (useful for protocol unit
    /// tests where faults are injected explicitly).
    pub fn reliable(delay: u64) -> Self {
        NetConfig {
            min_delay: delay,
            max_delay: delay,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 7,
        }
    }

    /// A lossy, reordering network used by fault-injection tests.
    pub fn lossy(seed: u64, drop_probability: f64, duplicate_probability: f64) -> Self {
        NetConfig {
            min_delay: 1,
            max_delay: 10,
            drop_probability,
            duplicate_probability,
            seed,
        }
    }
}

/// Additional, deterministic fault plan applied on top of probabilistic
/// faults: crashed nodes and (directed) link partitions.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Nodes that have crashed: all traffic to and from them is dropped.
    pub crashed: HashSet<NodeId>,
    /// Directed links that are cut (`(from, to)` pairs).
    pub cut_links: HashSet<(NodeId, NodeId)>,
}

impl FaultPlan {
    /// Returns `true` if a message from `from` to `to` must be dropped.
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.cut_links.contains(&(from, to))
    }

    /// Marks a node as crashed.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revives a crashed node (e.g. after it rejoins in a later epoch).
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Cuts the directed link `from → to`.
    pub fn cut(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.insert((from, to));
    }

    /// Cuts both directions between two nodes.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert((a, b));
        self.cut_links.insert((b, a));
    }

    /// Heals every cut link.
    pub fn heal_links(&mut self) {
        self.cut_links.clear();
    }
}

#[derive(Debug)]
struct InFlight<M> {
    deliver_at: u64,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Deterministic discrete-time network simulator.
#[derive(Debug)]
pub struct SimNetwork<M> {
    config: NetConfig,
    faults: FaultPlan,
    now: u64,
    next_seq: u64,
    in_flight: BinaryHeap<Reverse<InFlight<M>>>,
    rng: StdRng,
    stats: NetStats,
}

impl<M> SimNetwork<M> {
    /// Creates a simulator with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SimNetwork {
            config,
            faults: FaultPlan::default(),
            now: 0,
            next_seq: 0,
            in_flight: BinaryHeap::new(),
            rng,
            stats: NetStats::new(),
        }
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of messages currently in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to the deterministic fault plan.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Submits a message for delivery.
    ///
    /// The message may be dropped or duplicated according to the configured
    /// probabilities, and is always dropped if the fault plan blocks the
    /// link or either endpoint crashed.
    pub fn send(&mut self, envelope: Envelope<M>)
    where
        M: Clone,
    {
        self.stats.record_send(envelope.from, envelope.wire_bytes);
        if self.faults.blocks(envelope.from, envelope.to) {
            self.stats.record_drop();
            return;
        }
        if self.config.drop_probability > 0.0
            && self.rng.gen_bool(self.config.drop_probability.min(1.0))
        {
            self.stats.record_drop();
            return;
        }
        let copies = if self.config.duplicate_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.duplicate_probability.min(1.0))
        {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = if self.config.max_delay > self.config.min_delay {
                self.rng
                    .gen_range(self.config.min_delay..=self.config.max_delay)
            } else {
                self.config.min_delay
            };
            let item = InFlight {
                deliver_at: self.now + delay.max(1),
                seq: self.next_seq,
                envelope: envelope.clone(),
            };
            self.next_seq += 1;
            self.in_flight.push(Reverse(item));
        }
    }

    /// Delivery time of the earliest in-flight message, if any.
    pub fn next_delivery_time(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(i)| i.deliver_at)
    }

    /// Advances time to the next delivery and returns every message due at
    /// that instant. Returns an empty vector when nothing is in flight.
    ///
    /// Messages addressed to nodes that crashed while the message was in
    /// flight are discarded at delivery time.
    pub fn step(&mut self) -> Vec<Envelope<M>> {
        let Some(t) = self.next_delivery_time() else {
            return Vec::new();
        };
        self.advance_to(t)
    }

    /// Advances time to `t` (if later than now) and returns all messages due
    /// at or before `t`, in delivery order.
    pub fn advance_to(&mut self, t: u64) -> Vec<Envelope<M>> {
        if t > self.now {
            self.now = t;
        }
        let mut delivered = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > self.now {
                break;
            }
            let Reverse(item) = self.in_flight.pop().expect("peeked");
            if self.faults.blocks(item.envelope.from, item.envelope.to) {
                self.stats.record_drop();
                continue;
            }
            self.stats.record_delivery(item.envelope.wire_bytes);
            delivered.push(item.envelope);
        }
        delivered
    }

    /// Advances time by `dt` ticks and returns everything due.
    pub fn advance_by(&mut self, dt: u64) -> Vec<Envelope<M>> {
        self.advance_to(self.now + dt)
    }

    /// Drops every in-flight message (used to model a full network blip).
    pub fn drop_all_in_flight(&mut self) {
        let n = self.in_flight.len() as u64;
        self.stats.messages_dropped += n;
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u16, to: u16, msg: u32) -> Envelope<u32> {
        Envelope::with_payload_bytes(NodeId(from), NodeId(to), msg, 8)
    }

    #[test]
    fn reliable_network_delivers_in_order() {
        let mut net = SimNetwork::new(NetConfig::reliable(3));
        net.send(env(0, 1, 1));
        net.send(env(0, 1, 2));
        net.send(env(0, 1, 3));
        let delivered = net.step();
        assert_eq!(delivered.len(), 3);
        assert_eq!(
            delivered.iter().map(|e| e.msg).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(net.now(), 3);
        assert_eq!(net.stats().messages_delivered, 3);
    }

    #[test]
    fn step_on_empty_network_returns_nothing() {
        let mut net: SimNetwork<u32> = SimNetwork::new(NetConfig::reliable(1));
        assert!(net.step().is_empty());
        assert_eq!(net.next_delivery_time(), None);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut net = SimNetwork::new(NetConfig::lossy(1, 1.0, 0.0));
        for i in 0..10 {
            net.send(env(0, 1, i));
        }
        assert_eq!(net.in_flight_len(), 0);
        assert_eq!(net.stats().messages_dropped, 10);
    }

    #[test]
    fn duplicate_probability_one_duplicates_everything() {
        let mut net = SimNetwork::new(NetConfig::lossy(1, 0.0, 1.0));
        net.send(env(0, 1, 7));
        let mut total = 0;
        while net.in_flight_len() > 0 {
            total += net.step().len();
        }
        assert_eq!(total, 2);
        assert_eq!(net.stats().messages_duplicated, 1);
    }

    #[test]
    fn variable_latency_reorders_messages() {
        let config = NetConfig {
            min_delay: 1,
            max_delay: 50,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 42,
        };
        let mut net = SimNetwork::new(config);
        for i in 0..100u32 {
            net.send(env(0, 1, i));
        }
        let mut order = Vec::new();
        loop {
            let batch = net.step();
            if batch.is_empty() {
                break;
            }
            order.extend(batch.into_iter().map(|e| e.msg));
        }
        assert_eq!(order.len(), 100);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "expected at least one reordering");
    }

    #[test]
    fn crashed_node_receives_and_sends_nothing() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().crash(NodeId(1));
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        assert_eq!(net.in_flight_len(), 0);
        net.faults_mut().revive(NodeId(1));
        net.send(env(0, 1, 3));
        assert_eq!(net.step().len(), 1);
    }

    #[test]
    fn crash_after_send_drops_at_delivery() {
        let mut net = SimNetwork::new(NetConfig::reliable(5));
        net.send(env(0, 1, 1));
        net.faults_mut().crash(NodeId(1));
        assert!(net.step().is_empty());
        assert_eq!(net.stats().messages_dropped, 1);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = SimNetwork::new(NetConfig::reliable(1));
        net.faults_mut().partition(NodeId(0), NodeId(1));
        net.send(env(0, 1, 1));
        net.send(env(1, 0, 2));
        net.send(env(0, 2, 3));
        let delivered = net.step();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].msg, 3);
        net.faults_mut().heal_links();
        net.send(env(0, 1, 4));
        assert_eq!(net.step().len(), 1);
    }

    #[test]
    fn same_seed_same_execution() {
        let run = |seed| {
            let mut net = SimNetwork::new(NetConfig::lossy(seed, 0.3, 0.2));
            for i in 0..200u32 {
                net.send(env(0, 1, i));
            }
            let mut order = Vec::new();
            loop {
                let batch = net.step();
                if batch.is_empty() {
                    break;
                }
                order.extend(batch.into_iter().map(|e| e.msg));
            }
            order
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn advance_by_moves_time_without_messages() {
        let mut net: SimNetwork<u32> = SimNetwork::new(NetConfig::reliable(1));
        net.advance_by(100);
        assert_eq!(net.now(), 100);
    }

    #[test]
    fn drop_all_in_flight_clears_queue() {
        let mut net = SimNetwork::new(NetConfig::reliable(10));
        net.send(env(0, 1, 1));
        net.send(env(0, 1, 2));
        net.drop_all_in_flight();
        assert_eq!(net.in_flight_len(), 0);
        assert!(net.step().is_empty());
        assert_eq!(net.stats().messages_dropped, 2);
    }
}
