//! The runtime-facing transport abstraction.
//!
//! [`Transport`] is the seam between a node event loop (one OS thread or
//! process per Zeus node, see `zeus-core`) and whatever moves its bytes:
//! the in-process channel mailbox ([`crate::threaded`]), the same mailbox
//! with link probing ([`ProbedMailbox`]), or real UDP sockets
//! ([`crate::udp`]). The node loop only ever sends envelopes, drains
//! deliveries, and calls [`Transport::maintain`] once per iteration; the
//! transport supplies back the two adaptive signals the protocol layer
//! consumes — the current retransmission-timeout estimate
//! ([`Transport::rto_micros`]) and a congestion flag
//! ([`Transport::congested`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use zeus_proto::NodeId;

use crate::envelope::Envelope;
use crate::rtt::{RttConfig, RttEstimator};
use crate::threaded::NodeMailbox;

/// A node's connection to its peers, as consumed by the node event loops.
///
/// All methods take `&self`: transports are handed to one loop thread but
/// may be cloned/shared internally (sockets, channels).
pub trait Transport<M>: Send + 'static {
    /// Sends `msg` of approximate `payload_bytes` size to `to`; `false`
    /// when the destination is known-unreachable (closed mailbox, cut
    /// link).
    fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool;

    /// Sends a whole outbox flush of `(to, msg, payload_bytes)` triples,
    /// preserving per-destination FIFO order.
    fn send_batch(&self, msgs: Vec<(NodeId, M, usize)>);

    /// Moves up to `max` delivered envelopes into `buf`, returning how many
    /// were appended.
    fn drain_into(&self, buf: &mut Vec<Envelope<M>>, max: usize) -> usize;

    /// Blocking receive with a timeout; `None` on timeout or shutdown.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>>;

    /// Delivered messages waiting to be drained.
    fn pending(&self) -> usize;

    /// Periodic transport work (RTT probes, link-layer retransmission),
    /// called once per node-loop iteration with the loop's microsecond
    /// clock.
    fn maintain(&self, now_us: u64) {
        let _ = now_us;
    }

    /// The transport's current retransmission-timeout estimate in
    /// microseconds (the largest per-peer RTO), or `None` when the
    /// transport has no estimator and the protocol layer should keep its
    /// configured fixed interval.
    fn rto_micros(&self) -> Option<u64> {
        None
    }

    /// Whether the transport itself is backlogged (e.g. a window of
    /// unacknowledged datagrams), beyond any inbox backlog the node loop
    /// observes on its own.
    fn congested(&self) -> bool {
        false
    }
}

/// The plain channel mailbox is a transport with no estimator: channels are
/// lossless and FIFO, so there is nothing to probe or retransmit.
impl<M: Send + 'static> Transport<M> for NodeMailbox<M> {
    fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool {
        NodeMailbox::send(self, to, msg, payload_bytes)
    }

    fn send_batch(&self, msgs: Vec<(NodeId, M, usize)>) {
        NodeMailbox::send_batch(self, msgs)
    }

    fn drain_into(&self, buf: &mut Vec<Envelope<M>>, max: usize) -> usize {
        NodeMailbox::drain_into(self, buf, max)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        NodeMailbox::recv_timeout(self, timeout)
    }

    fn pending(&self) -> usize {
        NodeMailbox::pending(self)
    }
}

/// Link-layer wrapper carried over the channel transport by
/// [`ProbedMailbox`]: application payloads plus the RTT probe traffic.
#[derive(Debug, Clone)]
pub enum LinkMsg<M> {
    /// An application message.
    App(M),
    /// RTT probe; the receiver echoes `sent_us` back in a [`LinkMsg::Pong`].
    Ping {
        /// Sender-clock timestamp of the probe.
        sent_us: u64,
    },
    /// RTT probe echo; the original sender samples `now - sent_us`.
    Pong {
        /// The echoed sender-clock timestamp.
        sent_us: u64,
    },
}

/// Wire size charged per probe message (two u8 tags + a u64 timestamp is
/// close enough for accounting).
const PROBE_BYTES: usize = 9;

/// How often [`ProbedMailbox::maintain`] pings each peer.
const PING_INTERVAL_US: u64 = 10_000;

/// The in-process channel mailbox with per-peer RTT estimation.
///
/// Channels never lose messages, so the interesting "round-trip time" here
/// is *queueing delay*: how long a message sits in a peer's inbox before
/// its loop drains it. The probed mailbox measures exactly that by sending
/// a [`LinkMsg::Ping`] through the same inbox every 10 ms
/// and sampling the echo, and feeds the resulting RTO estimate back to the
/// protocol layer via [`Transport::rto_micros`] — replacing the hard-coded
/// 1 ms retransmission floor the threaded runtime used to substitute for
/// the sim-tuned default. Probe traffic rides the ordinary mailbox, so the
/// estimate tracks real inbox backlog; the estimator's `min_rto` keeps the
/// light-load answer at the old floor.
#[derive(Debug)]
pub struct ProbedMailbox<M> {
    inner: NodeMailbox<LinkMsg<M>>,
    /// Per-peer estimators; `None` disables probing (fixed-interval mode).
    rtt: Option<Vec<Mutex<RttEstimator>>>,
    started: Instant,
    last_ping_us: AtomicU64,
}

impl<M: Send + 'static> ProbedMailbox<M> {
    /// Wraps `inner` with one RTT estimator per peer of an `n`-node
    /// cluster.
    pub fn adaptive(inner: NodeMailbox<LinkMsg<M>>, n: usize, config: RttConfig) -> Self {
        ProbedMailbox {
            inner,
            rtt: Some(
                (0..n)
                    .map(|_| Mutex::new(RttEstimator::new(config)))
                    .collect(),
            ),
            started: Instant::now(),
            last_ping_us: AtomicU64::new(u64::MAX),
        }
    }

    /// Wraps `inner` without probing: no pings are sent, and
    /// [`Transport::rto_micros`] stays `None` so the node keeps its
    /// explicitly configured fixed retransmission interval.
    pub fn passthrough(inner: NodeMailbox<LinkMsg<M>>) -> Self {
        ProbedMailbox {
            inner,
            rtt: None,
            started: Instant::now(),
            last_ping_us: AtomicU64::new(0),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Handles one raw envelope: answers pings, absorbs pongs, unwraps
    /// application messages.
    fn sift(&self, env: Envelope<LinkMsg<M>>) -> Option<Envelope<M>> {
        match env.msg {
            LinkMsg::App(_) => Some(env.map(|m| match m {
                LinkMsg::App(m) => m,
                _ => unreachable!("matched App above"),
            })),
            LinkMsg::Ping { sent_us } => {
                self.inner
                    .send(env.from, LinkMsg::Pong { sent_us }, PROBE_BYTES);
                None
            }
            LinkMsg::Pong { sent_us } => {
                if let Some(rtt) = &self.rtt {
                    if let Some(est) = rtt.get(env.from.index()) {
                        est.lock().sample(self.now_us().saturating_sub(sent_us));
                    }
                }
                None
            }
        }
    }
}

impl<M: Send + 'static> Transport<M> for ProbedMailbox<M> {
    fn send(&self, to: NodeId, msg: M, payload_bytes: usize) -> bool {
        self.inner.send(to, LinkMsg::App(msg), payload_bytes)
    }

    fn send_batch(&self, msgs: Vec<(NodeId, M, usize)>) {
        self.inner.send_batch(
            msgs.into_iter()
                .map(|(to, msg, bytes)| (to, LinkMsg::App(msg), bytes))
                .collect(),
        )
    }

    fn drain_into(&self, buf: &mut Vec<Envelope<M>>, max: usize) -> usize {
        let mut raw = Vec::new();
        self.inner.drain_into(&mut raw, max);
        let before = buf.len();
        buf.extend(raw.into_iter().filter_map(|env| self.sift(env)));
        buf.len() - before
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let env = self.inner.recv_timeout(remaining)?;
            if let Some(app) = self.sift(env) {
                return Some(app);
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }

    fn maintain(&self, _now_us: u64) {
        let Some(rtt) = &self.rtt else { return };
        let now = self.now_us();
        // `u64::MAX` is the never-pinged sentinel: the first maintain call
        // probes immediately so an estimate exists from the start.
        let last = self.last_ping_us.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < PING_INTERVAL_US {
            return;
        }
        if self
            .last_ping_us
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        for peer in 0..rtt.len() {
            let peer = NodeId(peer as u16);
            if peer != self.inner.id {
                self.inner
                    .send(peer, LinkMsg::Ping { sent_us: now }, PROBE_BYTES);
            }
        }
    }

    fn rto_micros(&self) -> Option<u64> {
        let rtt = self.rtt.as_ref()?;
        rtt.iter()
            .enumerate()
            .filter(|(i, _)| NodeId(*i as u16) != self.inner.id)
            .map(|(_, est)| est.lock().rto())
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::ThreadedNet;

    fn pair() -> (ProbedMailbox<u32>, ProbedMailbox<u32>) {
        let net: ThreadedNet<LinkMsg<u32>> = ThreadedNet::new(2);
        let config = RttConfig {
            initial_rto: 1_000,
            min_rto: 100,
            max_rto: 64_000,
        };
        (
            ProbedMailbox::adaptive(net.mailbox(NodeId(0)), 2, config),
            ProbedMailbox::adaptive(net.mailbox(NodeId(1)), 2, config),
        )
    }

    #[test]
    fn app_messages_pass_through() {
        let (a, b) = pair();
        assert!(Transport::send(&a, NodeId(1), 7u32, 4));
        let env = Transport::recv_timeout(&b, Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 7);
        assert_eq!(env.from, NodeId(0));
    }

    #[test]
    fn probes_produce_rto_samples_and_stay_invisible() {
        let (a, b) = pair();
        assert_eq!(a.rto_micros(), Some(1_000), "initial rto before samples");
        // a pings; b answers while draining; a absorbs the pong.
        a.maintain(0);
        let mut buf = Vec::new();
        // The ping is probe traffic: nothing application-visible at b.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(Transport::drain_into(&b, &mut buf, 16), 0);
        assert!(buf.is_empty());
        // Wait for the pong to arrive back, then drain it.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(Transport::drain_into(&a, &mut buf, 16), 0);
        let rto = a.rto_micros().unwrap();
        assert_ne!(rto, 1_000, "pong must have fed the estimator");
        assert!(rto >= 100, "rto respects the floor");
    }

    #[test]
    fn passthrough_mode_reports_no_estimate() {
        let net: ThreadedNet<LinkMsg<u32>> = ThreadedNet::new(2);
        let a: ProbedMailbox<u32> = ProbedMailbox::passthrough(net.mailbox(NodeId(0)));
        let b: ProbedMailbox<u32> = ProbedMailbox::passthrough(net.mailbox(NodeId(1)));
        a.maintain(0);
        assert_eq!(a.rto_micros(), None);
        let mut buf = Vec::new();
        assert_eq!(Transport::drain_into(&b, &mut buf, 16), 0, "no probes sent");
        assert!(Transport::send(&a, NodeId(1), 3u32, 4));
        assert_eq!(Transport::drain_into(&b, &mut buf, 16), 1);
    }
}
