//! Loopback integration tests for the UDP socket runtime: loss recovery,
//! RTO adaptation against a synthetic delayed peer, and restart-with-same-
//! address rebinding (the `kill -9` + restart building block).

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::{Duration, Instant};

use zeus_net::envelope::Envelope;
use zeus_net::reliable::ReliableMsg;
use zeus_net::threaded::{LinkFaults, SharedCounters};
use zeus_net::udp::{decode_frame, encode_frame, LossyConfig, UdpConfig, UdpTransport};
use zeus_net::{RttConfig, Transport};
use zeus_proto::NodeId;

/// Binds `n` loopback sockets and returns them with their addresses.
fn bind_sockets(n: usize) -> (Vec<UdpSocket>, Vec<std::net::SocketAddr>) {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs = sockets.iter().map(|s| s.local_addr().unwrap()).collect();
    (sockets, addrs)
}

fn transport(
    socket: UdpSocket,
    local: NodeId,
    peers: Vec<std::net::SocketAddr>,
    rtt: RttConfig,
    loss: Option<LossyConfig>,
) -> UdpTransport<u32> {
    let config = UdpConfig {
        local,
        peers,
        rtt,
        loss,
    };
    UdpTransport::from_socket(
        socket,
        config,
        Arc::new(SharedCounters::default()),
        Arc::new(LinkFaults::default()),
    )
    .expect("start transport")
}

/// Polls until `t` has no unacknowledged messages left or the deadline
/// passes (acks race the assertions otherwise).
fn wait_drained(t: &UdpTransport<u32>, deadline: Duration) -> usize {
    let until = Instant::now() + deadline;
    while t.unacked() > 0 && Instant::now() < until {
        std::thread::sleep(Duration::from_millis(2));
    }
    t.unacked()
}

/// Drains `t` until `want` messages arrived or the deadline passes.
fn collect(t: &UdpTransport<u32>, want: usize, deadline: Duration) -> Vec<u32> {
    let until = Instant::now() + deadline;
    let mut got: Vec<Envelope<u32>> = Vec::new();
    while got.len() < want && Instant::now() < until {
        if let Some(env) = t.recv_timeout(Duration::from_millis(5)) {
            got.push(env);
        }
        let room = want - got.len();
        t.drain_into(&mut got, room);
    }
    got.into_iter().map(|e| e.msg).collect()
}

#[test]
fn delivers_in_order_under_forced_drop() {
    // Both directions drop ~30% of frames (data AND acks) via the
    // deterministic send-side lossy wrapper; the reliable layer must
    // recover every message, in order, by retransmission and dedup.
    let (mut sockets, addrs) = bind_sockets(2);
    let rtt = RttConfig {
        initial_rto: 2_000,
        min_rto: 1_000,
        max_rto: 64_000,
    };
    let loss = |seed| {
        Some(LossyConfig {
            drop_probability: 0.3,
            seed,
        })
    };
    let b = transport(
        sockets.pop().unwrap(),
        NodeId(1),
        addrs.clone(),
        rtt,
        loss(11),
    );
    let a = transport(
        sockets.pop().unwrap(),
        NodeId(0),
        addrs.clone(),
        rtt,
        loss(7),
    );

    let msgs: Vec<u32> = (0..200).collect();
    for &m in &msgs {
        a.send(NodeId(1), m, 4);
    }
    let got = collect(&b, msgs.len(), Duration::from_secs(20));
    assert_eq!(got, msgs, "loss must be masked, order preserved");
    assert_eq!(
        wait_drained(&a, Duration::from_secs(20)),
        0,
        "every message eventually acked"
    );
}

#[test]
fn rto_grows_against_a_delayed_peer_and_decays_when_it_heals() {
    // The synthetic peer is a raw socket speaking the frame format
    // directly: first it sits on acks (forcing retransmission timeouts →
    // exponential RTO growth), then it acks promptly (fresh samples →
    // the estimate collapses back toward the floor).
    let (mut sockets, mut addrs) = bind_sockets(1);
    let synth = UdpSocket::bind("127.0.0.1:0").unwrap();
    synth
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    addrs.push(synth.local_addr().unwrap());
    let rtt = RttConfig {
        initial_rto: 2_000,
        min_rto: 1_000,
        max_rto: 512_000,
    };
    let a = transport(sockets.pop().unwrap(), NodeId(0), addrs, rtt, None);
    assert_eq!(a.rto_micros(), Some(2_000), "initial RTO before any link");

    // Phase 1: a message the peer refuses to ack for a while. Every RTO
    // expiry retransmits and doubles the link's timeout.
    a.send(NodeId(1), 7, 4);
    std::thread::sleep(Duration::from_millis(40));
    let grown = a.rto_micros().unwrap();
    assert!(
        grown >= 8_000,
        "repeated timeouts must back the RTO off exponentially, got {grown}"
    );

    // Ack everything sent so far (cumulative), absorbing the backlog. The
    // sample is discarded (Karn: the message was retransmitted), so the
    // RTO stays backed off until fresh samples arrive.
    let mut buf = [0u8; 2048];
    let mut a_addr = None;
    while let Ok((n, src)) = synth.recv_from(&mut buf) {
        let (_, _, msg) = decode_frame::<u32>(&buf[..n]).unwrap();
        if matches!(msg, ReliableMsg::Data { .. }) {
            a_addr = Some(src);
        }
    }
    let a_addr = a_addr.expect("the transport must have retransmitted");
    let ack = encode_frame::<u32>(NodeId(1), 0xB007, &ReliableMsg::Ack { next_expected: 1 });
    synth.send_to(&ack, a_addr).unwrap();

    // Phase 2: prompt acks on fresh sends feed real samples; the estimate
    // must decay from the backed-off value down toward loopback reality.
    for i in 1..=20u64 {
        a.send(NodeId(1), i as u32, 4);
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            match synth.recv_from(&mut buf) {
                Ok((n, src)) => {
                    let (_, _, msg) = decode_frame::<u32>(&buf[..n]).unwrap();
                    if let ReliableMsg::Data { seq, .. } = msg {
                        if seq == i {
                            let ack = encode_frame::<u32>(
                                NodeId(1),
                                0xB007,
                                &ReliableMsg::Ack {
                                    next_expected: seq + 1,
                                },
                            );
                            synth.send_to(&ack, src).unwrap();
                            break;
                        }
                    }
                }
                Err(_) => continue,
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut decayed = a.rto_micros().unwrap();
    while Instant::now() < deadline {
        decayed = a.rto_micros().unwrap();
        if decayed < grown {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        decayed < grown,
        "fresh samples must shrink the RTO ({decayed} vs grown {grown})"
    );
    assert!(decayed >= 1_000, "the floor always holds");
    assert!(
        a.srtt_micros(NodeId(1)).is_some(),
        "prompt acks must have produced RTT samples"
    );
}

#[test]
fn restart_on_same_address_resets_the_link() {
    // Node 1 "crashes" (transport dropped, socket closed) and comes back
    // on the same address with a fresh boot token and sequence space. The
    // survivor must reset its link state instead of discarding the
    // restarted node's seq-0 traffic as duplicates.
    let (mut sockets, addrs) = bind_sockets(2);
    let rtt = RttConfig {
        initial_rto: 2_000,
        min_rto: 1_000,
        max_rto: 64_000,
    };
    let b = transport(sockets.pop().unwrap(), NodeId(1), addrs.clone(), rtt, None);
    let a = transport(sockets.pop().unwrap(), NodeId(0), addrs.clone(), rtt, None);

    // Pre-crash traffic in both directions.
    a.send(NodeId(1), 100, 4);
    b.send(NodeId(0), 200, 4);
    assert_eq!(collect(&b, 1, Duration::from_secs(5)), vec![100]);
    assert_eq!(collect(&a, 1, Duration::from_secs(5)), vec![200]);

    // Crash node 1 and rebind the same address.
    let b_addr = addrs[1];
    drop(b);
    let socket = UdpSocket::bind(b_addr).expect("rebind the crashed node's address");
    let b2 = transport(socket, NodeId(1), addrs.clone(), rtt, None);

    // The restarted node speaks first (its seq 0 again); the survivor must
    // accept it after noticing the new boot token, and its own traffic to
    // the restarted node must restart cleanly too.
    b2.send(NodeId(0), 201, 4);
    assert_eq!(
        collect(&a, 1, Duration::from_secs(5)),
        vec![201],
        "survivor must accept the restarted node's fresh sequence space"
    );
    a.send(NodeId(1), 101, 4);
    assert_eq!(
        collect(&b2, 1, Duration::from_secs(5)),
        vec![101],
        "survivor-to-restarted traffic must flow after the link reset"
    );
    assert_eq!(wait_drained(&a, Duration::from_secs(5)), 0);
}
